//! Checkpointing policy for long full-system jobs.
//!
//! A sweep over paper-scale inputs runs individual jobs for tens of
//! millions of cycles; a killed process (preemption, OOM, ^C) would
//! otherwise forfeit all of them. A [`CheckpointStore`] makes full-system
//! jobs resumable: each job periodically snapshots its simulator state
//! under a file keyed by the job's *content hash* — the same identity the
//! result cache uses — so a re-run of the identical spec picks up from
//! the newest checkpoint, produces the bit-identical result, and lands in
//! the cache under the same address as an uninterrupted run would have.
//!
//! Enabled via `FLUMEN_SWEEP_CHECKPOINT=<cycles>` (checkpoint interval);
//! checkpoints live under `$FLUMEN_DATA_DIR/checkpoints` (default
//! `EXPERIMENTS-data/checkpoints`) and are deleted when their job
//! completes.

use flumen::CheckpointPolicy;
use std::path::PathBuf;

/// Where and how often full-system sweep jobs checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    /// Directory holding the checkpoint files of every in-flight job.
    pub dir: PathBuf,
    /// Cycles between snapshots.
    pub every_cycles: u64,
}

impl CheckpointStore {
    /// A store writing to `dir` every `every_cycles` cycles.
    pub fn new(dir: PathBuf, every_cycles: u64) -> Self {
        CheckpointStore { dir, every_cycles }
    }

    /// The default checkpoint directory:
    /// `$FLUMEN_DATA_DIR/checkpoints`, falling back to
    /// `EXPERIMENTS-data/checkpoints`.
    pub fn default_dir() -> PathBuf {
        let data = std::env::var("FLUMEN_DATA_DIR").unwrap_or_else(|_| "EXPERIMENTS-data".into());
        PathBuf::from(data).join("checkpoints")
    }

    /// Reads `FLUMEN_SWEEP_CHECKPOINT` (interval in cycles). Unset, zero
    /// or unparsable means checkpointing stays off.
    pub fn from_env() -> Option<Self> {
        let every = std::env::var("FLUMEN_SWEEP_CHECKPOINT")
            .ok()?
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)?;
        Some(CheckpointStore::new(Self::default_dir(), every))
    }

    /// The [`CheckpointPolicy`] for the job with content hash `hash`.
    /// Keying by content hash means a resumed spec finds exactly its own
    /// checkpoints and a changed spec (different hash) never collides
    /// with a stale one.
    pub fn policy_for(&self, hash: &str) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: self.dir.clone(),
            key: hash.to_string(),
            every_cycles: self.every_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_inherits_dir_interval_and_keys_by_hash() {
        let store = CheckpointStore::new(PathBuf::from("/tmp/ckpt"), 5_000);
        let p = store.policy_for("abc123");
        assert_eq!(p.dir, PathBuf::from("/tmp/ckpt"));
        assert_eq!(p.key, "abc123");
        assert_eq!(p.every_cycles, 5_000);
        // Distinct hashes → distinct keys, same directory.
        assert_ne!(store.policy_for("other").key, p.key);
    }

    #[test]
    fn default_dir_is_under_data_root() {
        assert!(CheckpointStore::default_dir().ends_with("checkpoints"));
    }
}
