//! Result sinks: JSONL dumps, CSV tables and the run manifest.
//!
//! The manifest (`manifest.jsonl` next to the cache) appends one line per
//! sweep invocation — job count, hit/miss split, wall time — so a data
//! directory records how its contents were produced and a re-run can be
//! audited for cache effectiveness.

use crate::exec::{SweepPlan, SweepReport};
use crate::job::JobSpec;
use crate::json::{Json, ToJson};
use crate::metrics::unit_metrics;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes one JSON object per line: `{label, hash, cached, wall_ms,
/// result}` for every job in the report, in plan order. Full-system runs
/// additionally carry a `metrics` object with unit-suffixed headline
/// keys (`latency_ns`, `energy_pj`, `loss_db` — see
/// [`crate::metrics::unit_metrics`]) and a top-level `truncated` flag so
/// a run that hit its cycle budget is visible without digging into the
/// result payload.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_results_jsonl(path: &Path, plan: &SweepPlan, report: &SweepReport) {
    let mut out = String::new();
    for ((spec, rec), result) in plan.jobs().iter().zip(&report.records).zip(&report.results) {
        let mut fields = vec![
            ("label", Json::Str(rec.label.clone())),
            ("hash", Json::Str(rec.hash.clone())),
            ("cached", rec.cached.to_json()),
            ("wall_ms", rec.wall_ms.to_json()),
            ("result", result.to_json()),
        ];
        if let JobSpec::FullRun { cfg, .. } = spec {
            fields.push(("metrics", unit_metrics(result.full_run(), cfg)));
            fields.push(("truncated", result.full_run().truncated.to_json()));
        }
        let line = Json::obj(fields);
        out.push_str(&line.to_canonical());
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create sink dir");
    }
    fs::write(path, out).expect("write results jsonl");
}

/// Writes a recorded event stream twice: Chrome-trace JSON (open in
/// Perfetto / `chrome://tracing`) at `<stem>.trace.json` and one event
/// per line at `<stem>.trace.jsonl`. Returns the two paths.
///
/// Pass [`SweepReport::trace_events`] for the executor timeline, or any
/// stream drained from a `flumen_trace::RecordingTracer`.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_trace_files(
    dir: &Path,
    stem: &str,
    events: &[flumen_trace::TraceEvent],
) -> (std::path::PathBuf, std::path::PathBuf) {
    fs::create_dir_all(dir).expect("create trace dir");
    let chrome = dir.join(format!("{stem}.trace.json"));
    fs::write(&chrome, flumen_trace::chrome::to_chrome_json(events)).expect("write chrome trace");
    let jsonl = dir.join(format!("{stem}.trace.jsonl"));
    let mut f = fs::File::create(&jsonl).expect("create trace jsonl");
    flumen_trace::jsonl::write_jsonl(&mut f, events).expect("write trace jsonl");
    (chrome, jsonl)
}

/// Writes a CSV file (headers + rows).
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_csv_file(path: &Path, headers: &[&str], rows: &[Vec<String>]) {
    let mut s = headers.join(",") + "\n";
    for r in rows {
        s.push_str(&r.join(","));
        s.push('\n');
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create sink dir");
    }
    fs::write(path, s).expect("write csv");
}

/// Appends one summary line for this sweep to `<dir>/manifest.jsonl`.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn append_manifest(dir: &Path, name: &str, report: &SweepReport) {
    fs::create_dir_all(dir).expect("create manifest dir");
    let line = Json::obj([
        ("sweep", Json::Str(name.to_string())),
        ("jobs", report.records.len().to_json()),
        ("cache_hits", report.cache_hits().to_json()),
        ("executed", report.executed().to_json()),
        ("wall_ms", report.wall_ms.to_json()),
        (
            "job_hashes",
            Json::Arr(
                report
                    .records
                    .iter()
                    .map(|r| Json::Str(r.hash.clone()))
                    .collect(),
            ),
        ),
    ]);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("manifest.jsonl"))
        .expect("open manifest");
    writeln!(f, "{}", line.to_canonical()).expect("append manifest");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_plan, SweepOptions, SweepPlan};
    use crate::job::{JobSpec, NetSpec};
    use flumen_noc::harness::RunConfig;
    use flumen_noc::traffic::TrafficPattern;

    #[test]
    fn sinks_write_plan_ordered_lines() {
        let base = std::env::temp_dir().join(format!("flumen-sweep-sink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);

        let mut plan = SweepPlan::new();
        for seed in [1u64, 2] {
            plan.push(JobSpec::NocPoint {
                net: NetSpec::Ring { nodes: 8 },
                pattern: TrafficPattern::Shuffle,
                load: 0.05,
                cfg: RunConfig {
                    warmup: 50,
                    measure: 200,
                    seed,
                    ..RunConfig::default()
                },
            });
        }
        let report = run_plan(&plan, &SweepOptions::serial_in(base.join("cache")));

        let jsonl = base.join("out.jsonl");
        write_results_jsonl(&jsonl, &plan, &report);
        let text = fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 2);
        for (line, rec) in text.lines().zip(&report.records) {
            let j = Json::parse(line).unwrap();
            assert_eq!(j.get("hash").unwrap().as_str().unwrap(), rec.hash);
        }

        append_manifest(&base, "test-sweep", &report);
        let manifest = fs::read_to_string(base.join("manifest.jsonl")).unwrap();
        let j = Json::parse(manifest.lines().next().unwrap()).unwrap();
        assert_eq!(j.get("jobs").unwrap().as_usize().unwrap(), 2);

        write_csv_file(
            &base.join("t.csv"),
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        assert_eq!(
            fs::read_to_string(base.join("t.csv")).unwrap(),
            "a,b\n1,2\n"
        );

        fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn trace_sink_writes_both_formats() {
        use flumen_trace::EventKind;
        let base = std::env::temp_dir().join(format!("flumen-sweep-trace-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);

        let mut plan = SweepPlan::new();
        plan.push(JobSpec::NocPoint {
            net: NetSpec::Ring { nodes: 8 },
            pattern: TrafficPattern::Shuffle,
            load: 0.05,
            cfg: RunConfig {
                warmup: 50,
                measure: 200,
                ..RunConfig::default()
            },
        });
        let report = run_plan(&plan, &SweepOptions::serial_in(base.join("cache")));
        // One executed job → one begin + one end span on the timeline.
        let begins = report
            .trace_events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .count();
        assert_eq!(begins, 1);
        assert_eq!(report.trace_events.len(), 2);

        let (chrome, jsonl) = write_trace_files(&base, "sweep", &report.trace_events);
        let cj = fs::read_to_string(&chrome).unwrap();
        assert!(cj.starts_with('[') && cj.contains("\"ph\":\"B\""));
        assert_eq!(fs::read_to_string(&jsonl).unwrap().lines().count(), 2);

        // A re-run is served from cache and leaves a cache_hit instant.
        let again = run_plan(&plan, &SweepOptions::serial_in(base.join("cache")));
        assert_eq!(again.cache_hits(), 1);
        assert!(again
            .trace_events
            .iter()
            .any(|e| e.name == "cache_hit" && e.kind == EventKind::Instant));

        fs::remove_dir_all(&base).unwrap();
    }
}
