//! `flumen-sweep` — deterministic experiment orchestration.
//!
//! The figure/ablation binaries under `crates/bench` all reduce to the
//! same shape: enumerate a grid of simulation configurations, run each
//! one, tabulate. This crate factors that shape out into three pieces:
//!
//! * **Jobs** ([`JobSpec`]): a fully-serializable description of one
//!   experiment (full-system benchmark run or NoC latency point) with a
//!   stable SHA-256 content hash over its canonical JSON plus a
//!   code-version salt.
//! * **Execution** ([`SweepPlan`], [`run_plan`]): a thread pool pulling
//!   from a shared queue. Results are keyed by plan index and every job
//!   carries its own seed, so parallel and serial runs are bit-identical.
//! * **Caching** ([`ResultCache`]): content-addressed JSON entries under
//!   `EXPERIMENTS-data/cache/`. A re-run with unchanged parameters is
//!   pure cache hits; changing any parameter (or [`CODE_VERSION`])
//!   changes the hash and re-simulates exactly the affected jobs.
//!
//! Sinks ([`sink`]) write JSONL/CSV result files and append a per-sweep
//! manifest line for auditability.
//!
//! Environment knobs: `FLUMEN_SWEEP_THREADS` (worker count),
//! `FLUMEN_SWEEP_FORCE=1` (bypass cache), `FLUMEN_SWEEP_CHECKPOINT`
//! (checkpoint interval in cycles for long full-system jobs),
//! `FLUMEN_DATA_DIR` (data and cache root).

#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod configs;
pub mod exec;
pub mod hash;
pub mod job;
pub mod metrics;
pub mod progstore;
pub mod sink;

/// Canonical JSON (re-exported from `flumen-sim`, where it moved so
/// simulation snapshots and job hashes share one canonical byte form).
pub use flumen_sim::json;

pub use cache::{CacheEntry, ResultCache};
pub use checkpoint::CheckpointStore;
pub use exec::{run_plan, JobRecord, SweepOptions, SweepPlan, SweepReport};
pub use flumen_photonics::progstore::{ProgStoreStats, ProgramStore};
pub use job::{
    BenchKind, BenchSize, BenchSpec, JobResult, JobSpec, NetSpec, NocStatsPoint, CODE_VERSION,
};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use progstore::{plan_weight_blocks, precompile_blocks, precompile_plan, PrecompileReport};
