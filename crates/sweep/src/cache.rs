//! Content-addressed on-disk result cache.
//!
//! One JSON file per job under the cache directory, named by the job's
//! content hash (`<sha256>.json`). Because the hash covers every input
//! parameter *and* a code-version salt ([`crate::job::CODE_VERSION`]),
//! invalidation is automatic: change any knob and the job simply misses.
//! Entries embed the originating spec, so a cache directory is
//! self-describing and can be audited or replayed without the plan that
//! produced it.
//!
//! Writes go through a temp file followed by an atomic rename, so a
//! crashed or concurrent run can never leave a torn entry behind —
//! readers see either nothing or a complete file.

use crate::job::{JobResult, JobSpec, CODE_VERSION};
use crate::json::{FromJson, Json, ToJson};
use std::fs;
use std::path::{Path, PathBuf};

/// A cache entry as stored on disk.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The spec that produced the result.
    pub spec: JobSpec,
    /// The simulation output.
    pub result: JobResult,
    /// Wall-clock time of the original (uncached) execution, ms.
    pub wall_ms: f64,
}

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and creates, if missing) a cache rooted at `dir`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn open(dir: &Path) -> Self {
        fs::create_dir_all(dir).expect("create cache dir");
        ResultCache {
            dir: dir.to_path_buf(),
        }
    }

    /// The default location: `$FLUMEN_DATA_DIR/cache`, falling back to
    /// `EXPERIMENTS-data/cache`.
    pub fn default_dir() -> PathBuf {
        let data = std::env::var("FLUMEN_DATA_DIR").unwrap_or_else(|_| "EXPERIMENTS-data".into());
        PathBuf::from(data).join("cache")
    }

    /// Path of the entry for `hash`.
    pub fn entry_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks up a job by content hash. Returns `None` on miss *or* on an
    /// unreadable/corrupt entry (which then simply gets recomputed and
    /// rewritten — corruption is never fatal).
    pub fn load(&self, hash: &str) -> Option<CacheEntry> {
        let text = fs::read_to_string(self.entry_path(hash)).ok()?;
        let j = Json::parse(&text).ok()?;
        // Defense in depth: the version is part of the hash already, but a
        // hand-edited or migrated entry should still never be served stale.
        if j.get("code_version").ok()?.as_str().ok()? != CODE_VERSION {
            return None;
        }
        Some(CacheEntry {
            spec: JobSpec::from_json(j.get("spec").ok()?).ok()?,
            result: JobResult::from_json(j.get("result").ok()?).ok()?,
            wall_ms: j.get("wall_ms").ok()?.as_f64().ok()?,
        })
    }

    /// Stores a result under its spec's content hash (atomic
    /// write-then-rename; concurrent writers of the same hash are safe
    /// because they would write identical content).
    ///
    /// # Panics
    ///
    /// Panics on I/O failure — a broken cache directory should stop the
    /// sweep rather than silently re-simulate everything forever.
    pub fn store(&self, spec: &JobSpec, result: &JobResult, wall_ms: f64) -> String {
        let hash = spec.content_hash();
        let entry = Json::obj([
            ("code_version", Json::Str(CODE_VERSION.into())),
            ("hash", Json::Str(hash.clone())),
            ("label", Json::Str(spec.label())),
            ("spec", spec.to_json()),
            ("result", result.to_json()),
            ("wall_ms", wall_ms.to_json()),
        ]);
        let final_path = self.entry_path(&hash);
        let tmp_path = self.dir.join(format!("{hash}.tmp.{}", std::process::id()));
        fs::write(&tmp_path, entry.to_pretty()).expect("write cache entry");
        fs::rename(&tmp_path, &final_path).expect("publish cache entry");
        hash
    }

    /// Removes every entry (used by `--force` style re-runs and tests).
    pub fn clear(&self) {
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if e.path().extension().is_some_and(|x| x == "json") {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|it| {
                it.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, NetSpec};
    use flumen_noc::harness::RunConfig;
    use flumen_noc::traffic::TrafficPattern;

    fn tmp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("flumen-sweep-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(&dir)
    }

    fn tiny_noc_spec(seed: u64) -> JobSpec {
        JobSpec::NocPoint {
            net: NetSpec::Ring { nodes: 8 },
            pattern: TrafficPattern::UniformRandom,
            load: 0.1,
            cfg: RunConfig {
                warmup: 50,
                measure: 200,
                seed,
                ..RunConfig::default()
            },
        }
    }

    #[test]
    fn miss_store_hit_round_trip() {
        let cache = tmp_cache("roundtrip");
        let spec = tiny_noc_spec(1);
        let hash = spec.content_hash();
        assert!(cache.load(&hash).is_none(), "fresh cache must miss");

        let result = spec.execute();
        cache.store(&spec, &result, 12.5);
        let entry = cache.load(&hash).expect("stored entry must hit");
        assert_eq!(entry.spec, spec);
        assert_eq!(
            entry.result.latency().avg_latency,
            result.latency().avg_latency
        );
        assert_eq!(entry.wall_ms, 12.5);

        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn different_params_use_different_entries() {
        let cache = tmp_cache("invalidate");
        let a = tiny_noc_spec(1);
        let b = tiny_noc_spec(2); // seed differs → new hash → miss
        cache.store(&a, &a.execute(), 1.0);
        assert!(cache.load(&a.content_hash()).is_some());
        assert!(cache.load(&b.content_hash()).is_none());
        assert_ne!(a.content_hash(), b.content_hash());

        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_entry_degrades_to_miss() {
        let cache = tmp_cache("corrupt");
        let spec = tiny_noc_spec(3);
        let hash = cache.store(&spec, &spec.execute(), 1.0);
        fs::write(cache.entry_path(&hash), "{ not json").unwrap();
        assert!(cache.load(&hash).is_none());

        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = tmp_cache("clear");
        let spec = tiny_noc_spec(4);
        cache.store(&spec, &spec.execute(), 1.0);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());

        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
