//! Canonical-form tests for the workspace's configuration and result
//! JSON bridges.
//!
//! The `ToJson`/`FromJson` impls themselves live next to the types they
//! serialize (e.g. `RuntimeConfig` in `flumen::runtime`, `NetStats` in
//! `flumen_noc::stats`), where the checkpoint/resume machinery also needs
//! them. What this module pins down is the property the *sweep* layer
//! depends on: those bridges define the canonical serialized form of
//! every parameter that feeds a job's content hash, so any field change —
//! however small — produces a different hash and therefore a cache miss.

#[cfg(test)]
mod tests {
    use crate::json::{FromJson, Json, ToJson};
    use flumen::scheduler::SchedulerParams;
    use flumen::{RuntimeConfig, SystemTopology};
    use flumen_noc::harness::LatencyPoint;
    use flumen_noc::traffic::TrafficPattern;

    #[test]
    fn runtime_config_round_trips() {
        let cfg = RuntimeConfig::paper();
        let j = cfg.to_json();
        let back = RuntimeConfig::from_json(&j).unwrap();
        assert_eq!(back.system.cores, cfg.system.cores);
        assert_eq!(back.control.fabric_n, cfg.control.fabric_n);
        assert_eq!(back.control.scheduler.eta, cfg.control.scheduler.eta);
        assert_eq!(back.energy, cfg.energy);
        assert_eq!(back.max_cycles, cfg.max_cycles);
        // And the canonical text itself is a fixed point.
        let text = j.to_canonical();
        assert_eq!(back.to_json().to_canonical(), text);
    }

    #[test]
    fn topology_and_pattern_names_round_trip() {
        for t in SystemTopology::all() {
            assert_eq!(SystemTopology::from_json(&t.to_json()).unwrap(), t);
        }
        for p in TrafficPattern::all() {
            assert_eq!(TrafficPattern::from_json(&p.to_json()).unwrap(), p);
        }
        assert!(SystemTopology::from_json(&Json::Str("torus".into())).is_err());
    }

    #[test]
    fn missing_field_error_names_the_path() {
        let mut j = SchedulerParams::default().to_json();
        if let Json::Obj(map) = &mut j {
            map.remove("zeta");
        }
        let err = SchedulerParams::from_json(&j).unwrap_err();
        assert!(err.0.contains("SchedulerParams.zeta"), "got: {}", err.0);
    }

    #[test]
    fn latency_point_preserves_saturation_infinity() {
        let pt = LatencyPoint {
            offered_load: 0.45,
            avg_latency: f64::INFINITY,
            throughput: 0.31,
            link_utilization: 0.97,
            saturated: true,
        };
        let text = pt.to_json().to_canonical();
        let back = LatencyPoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.avg_latency.is_infinite());
        assert!(back.saturated);
    }
}
