//! JSON bridges for the workspace's configuration and result types.
//!
//! These impls define the *canonical serialized form* of every parameter
//! that feeds a job's content hash, so any field change — however small —
//! produces a different hash and therefore a cache miss. Field names match
//! the Rust struct fields one-to-one; enums serialize as their established
//! display names (`SystemTopology::name()`, `TrafficPattern::name()`).
//!
//! `serde` itself cannot be used here: the build environment is offline
//! (see `vendor/`), so the sweep crate carries its own minimal traits in
//! [`crate::json`].

use crate::json::{FromJson, Json, JsonError, ToJson};
use flumen::scheduler::SchedulerParams;
use flumen::{ControlUnitParams, FullRunResult, RuntimeConfig, SystemTopology};
use flumen_noc::harness::{LatencyPoint, RunConfig};
use flumen_noc::traffic::TrafficPattern;
use flumen_noc::NetStats;
use flumen_power::{EnergyBreakdown, EnergyParams};
use flumen_system::{ActivityCounts, CacheConfig, SystemConfig};
use flumen_units::Picojoules;
use flumen_workloads::taskgen::TaskGenConfig;

/// Implements `ToJson`/`FromJson` for a plain struct, field by field.
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::obj([$((stringify!($field), self.$field.to_json()),)+])
            }
        }
        impl FromJson for $ty {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                Ok($ty {
                    $($field: j.get(stringify!($field)).and_then(FromJson::from_json).map_err(|e| {
                        JsonError(format!(
                            concat!(stringify!($ty), ".", stringify!($field), ": {}"),
                            e
                        ))
                    })?,)+
                })
            }
        }
    };
}

// Unit newtypes serialize as their raw numeric value: the canonical JSON
// text (and therefore every content-addressed job hash) is identical to the
// pre-`flumen-units` encoding. The unit lives in the *key* name (`_pj`
// suffix), not the value.
impl ToJson for Picojoules {
    fn to_json(&self) -> Json {
        Json::Num(self.value())
    }
}

impl FromJson for Picojoules {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Picojoules::new(j.as_f64()?))
    }
}

impl ToJson for SystemTopology {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for SystemTopology {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let name = j.as_str()?;
        SystemTopology::all()
            .into_iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| JsonError(format!("unknown topology {name:?}")))
    }
}

impl ToJson for TrafficPattern {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for TrafficPattern {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let name = j.as_str()?;
        TrafficPattern::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| JsonError(format!("unknown traffic pattern {name:?}")))
    }
}

json_struct!(CacheConfig {
    size_bytes,
    line_bytes,
    ways,
    latency
});

json_struct!(SystemConfig {
    cores,
    chiplets,
    freq_ghz,
    ipc,
    l1i,
    l1d,
    l2,
    l3_slice,
    dram_latency,
    mlp,
    req_bits,
    reply_bits,
});

json_struct!(TaskGenConfig {
    ops_per_mac,
    unit_macs,
    max_configs_per_request,
    max_vectors_per_request,
    svd_partition,
    unitary_partition,
});

json_struct!(SchedulerParams {
    tau,
    eta,
    zeta,
    buffer_capacity,
    reject_beta,
    max_wait
});

json_struct!(ControlUnitParams {
    scheduler,
    fabric_n,
    chiplets_per_wire,
    switch_cycles,
    config_pipeline,
    stream_cycles_per_batch,
    compute_lambdas,
    arbitration_cycles,
    max_partitions,
    program_cache_entries,
});

json_struct!(EnergyParams {
    core_op_pj,
    core_busy_pj,
    l1_pj,
    l2_pj,
    l3_pj,
    dram_pj,
    mesh_bit_pj,
    ring_bit_pj,
    photonic_bit_pj,
    elec_router_static_w,
    optbus_static_w,
    mzim_comm_static_w,
    flumen_dacadc_static_w,
    core_leak_w_per_core,
    l3_leak_w,
    dram_background_w,
});

json_struct!(RuntimeConfig {
    system,
    taskgen,
    control,
    energy,
    max_cycles,
    trace_interval
});

json_struct!(RunConfig {
    warmup,
    measure,
    packet_bits,
    link_bits_per_cycle,
    seed
});

json_struct!(ActivityCounts {
    core_ops,
    core_busy_cycles,
    l1i_accesses,
    l1d_accesses,
    l1d_misses,
    l2_accesses,
    l2_misses,
    l3_accesses,
    l3_misses,
    dram_accesses,
    nop_packets,
    offload_requests,
    mzim_mvms,
    mzim_input_samples,
    mzim_output_samples,
    mzim_active_cycles,
    mzim_reconfigs,
    mzim_programmed_mzis,
});

json_struct!(NetStats {
    injected,
    delivered,
    latency_sum,
    latency_max,
    latency_hist,
    bits_injected,
    bit_hops,
    link_busy,
    reconfigurations,
    cycles,
});

json_struct!(EnergyBreakdown {
    core_j,
    l1i_j,
    l1d_j,
    l2_j,
    l3_j,
    dram_j,
    nop_j,
    mzim_j
});

json_struct!(FullRunResult {
    topology,
    benchmark,
    cycles,
    seconds,
    counts,
    net_stats,
    energy,
    utilization_trace,
});

json_struct!(LatencyPoint {
    offered_load,
    avg_latency,
    throughput,
    link_utilization,
    saturated
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_config_round_trips() {
        let cfg = RuntimeConfig::paper();
        let j = cfg.to_json();
        let back = RuntimeConfig::from_json(&j).unwrap();
        assert_eq!(back.system.cores, cfg.system.cores);
        assert_eq!(back.control.fabric_n, cfg.control.fabric_n);
        assert_eq!(back.control.scheduler.eta, cfg.control.scheduler.eta);
        assert_eq!(back.energy, cfg.energy);
        assert_eq!(back.max_cycles, cfg.max_cycles);
        // And the canonical text itself is a fixed point.
        let text = j.to_canonical();
        assert_eq!(back.to_json().to_canonical(), text);
    }

    #[test]
    fn topology_and_pattern_names_round_trip() {
        for t in SystemTopology::all() {
            assert_eq!(SystemTopology::from_json(&t.to_json()).unwrap(), t);
        }
        for p in TrafficPattern::all() {
            assert_eq!(TrafficPattern::from_json(&p.to_json()).unwrap(), p);
        }
        assert!(SystemTopology::from_json(&Json::Str("torus".into())).is_err());
    }

    #[test]
    fn missing_field_error_names_the_path() {
        let mut j = SchedulerParams::default().to_json();
        if let Json::Obj(map) = &mut j {
            map.remove("zeta");
        }
        let err = SchedulerParams::from_json(&j).unwrap_err();
        assert!(err.0.contains("SchedulerParams.zeta"), "got: {}", err.0);
    }

    #[test]
    fn latency_point_preserves_saturation_infinity() {
        let pt = LatencyPoint {
            offered_load: 0.45,
            avg_latency: f64::INFINITY,
            throughput: 0.31,
            link_utilization: 0.97,
            saturated: true,
        };
        let text = pt.to_json().to_canonical();
        let back = LatencyPoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.avg_latency.is_infinite());
        assert!(back.saturated);
    }
}
