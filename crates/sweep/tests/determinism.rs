//! Engine-level guarantees: parallel == serial, order-independence, and
//! cache hit/miss/invalidation across whole plans.
//!
//! The jobs are tiny NoC latency points (hundreds of cycles), so the
//! whole file runs in well under a second while still exercising the real
//! simulator, the worker pool, and the on-disk cache.

use flumen_noc::harness::RunConfig;
use flumen_noc::traffic::TrafficPattern;
use flumen_sweep::{run_plan, JobSpec, NetSpec, ResultCache, SweepOptions, SweepPlan};
use std::path::{Path, PathBuf};

fn tiny_cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: 50,
        measure: 300,
        seed,
        ..RunConfig::default()
    }
}

/// A 12-job plan mixing networks, patterns, loads and seeds.
fn sample_plan() -> SweepPlan {
    let mut plan = SweepPlan::new();
    for (i, net) in [
        NetSpec::Ring { nodes: 8 },
        NetSpec::Mesh {
            width: 2,
            height: 4,
        },
        NetSpec::OptBus { nodes: 8 },
        NetSpec::Flumen { nodes: 8 },
    ]
    .into_iter()
    .enumerate()
    {
        for (j, pattern) in [
            TrafficPattern::UniformRandom,
            TrafficPattern::Shuffle,
            TrafficPattern::Transpose,
        ]
        .into_iter()
        .enumerate()
        {
            plan.push(JobSpec::NocPoint {
                net,
                pattern,
                load: 0.05 + 0.05 * j as f64,
                cfg: tiny_cfg((i * 3 + j) as u64),
            });
        }
    }
    plan
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flumen-sweep-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(threads: usize, dir: &Path) -> SweepOptions {
    SweepOptions {
        threads,
        force: false,
        cache_dir: dir.to_path_buf(),
        verbose: false,
        checkpoint: None,
    }
}

/// Latency points compare exactly: the simulator is integer-cycle based
/// and fully seeded, so equal specs must give bit-equal floats.
fn assert_same_results(a: &flumen_sweep::SweepReport, b: &flumen_sweep::SweepReport) {
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(&b.results) {
        let (p, q) = (x.latency(), y.latency());
        assert_eq!(p.avg_latency.to_bits(), q.avg_latency.to_bits());
        assert_eq!(p.throughput.to_bits(), q.throughput.to_bits());
        assert_eq!(p.link_utilization.to_bits(), q.link_utilization.to_bits());
        assert_eq!(p.saturated, q.saturated);
    }
}

#[test]
fn parallel_matches_serial_bit_for_bit() {
    let plan = sample_plan();
    let d1 = tmp_dir("serial");
    let d4 = tmp_dir("par4");

    let serial = run_plan(&plan, &opts(1, &d1));
    let parallel = run_plan(&plan, &opts(4, &d4));
    assert_eq!(serial.executed(), plan.len());
    assert_eq!(parallel.executed(), plan.len());
    assert_same_results(&serial, &parallel);
    // Same specs → same hashes, independent of thread count.
    for (r, s) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(r.hash, s.hash);
    }

    std::fs::remove_dir_all(&d1).unwrap();
    std::fs::remove_dir_all(&d4).unwrap();
}

#[test]
fn shuffled_plan_order_gives_identical_per_job_results() {
    let plan = sample_plan();
    // Deterministic shuffle: reverse + interleave halves.
    let mut shuffled = SweepPlan::new();
    let jobs = plan.jobs();
    let half = jobs.len() / 2;
    for i in 0..half {
        shuffled.push(jobs[jobs.len() - 1 - i].clone());
        shuffled.push(jobs[i].clone());
    }
    assert_eq!(shuffled.len(), plan.len());

    let da = tmp_dir("order-a");
    let db = tmp_dir("order-b");
    let a = run_plan(&plan, &opts(2, &da));
    let b = run_plan(&shuffled, &opts(2, &db));

    // Match jobs across the two orders by content hash.
    for (rec, res) in a.records.iter().zip(&a.results) {
        let pos = b
            .records
            .iter()
            .position(|r| r.hash == rec.hash)
            .expect("job present");
        assert_eq!(
            res.latency().avg_latency.to_bits(),
            b.results[pos].latency().avg_latency.to_bits()
        );
    }

    std::fs::remove_dir_all(&da).unwrap();
    std::fs::remove_dir_all(&db).unwrap();
}

#[test]
fn second_run_is_all_cache_hits_and_identical() {
    let plan = sample_plan();
    let dir = tmp_dir("rerun");

    let first = run_plan(&plan, &opts(2, &dir));
    assert_eq!(first.cache_hits(), 0);

    let second = run_plan(&plan, &opts(2, &dir));
    assert_eq!(second.cache_hits(), plan.len());
    assert_eq!(second.executed(), 0);
    assert!((second.hit_rate() - 1.0).abs() < 1e-12);
    assert_same_results(&first, &second);

    // Force bypasses the cache but still lands on the same numbers.
    let forced = run_plan(
        &plan,
        &SweepOptions {
            threads: 2,
            force: true,
            cache_dir: dir.clone(),
            verbose: false,
            checkpoint: None,
        },
    );
    assert_eq!(forced.cache_hits(), 0);
    assert_same_results(&first, &forced);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn changed_parameter_invalidates_only_affected_jobs() {
    let dir = tmp_dir("invalidate");
    let plan = sample_plan();
    run_plan(&plan, &opts(2, &dir));

    // Nudge the seed of the first job only: exactly one miss on re-run.
    let mut tweaked = SweepPlan::new();
    for (i, job) in plan.jobs().iter().enumerate() {
        if i == 0 {
            let JobSpec::NocPoint {
                net,
                pattern,
                load,
                cfg,
            } = job.clone()
            else {
                unreachable!("sample plan is all NoC points");
            };
            tweaked.push(JobSpec::NocPoint {
                net,
                pattern,
                load,
                cfg: RunConfig {
                    seed: cfg.seed + 1000,
                    ..cfg
                },
            });
        } else {
            tweaked.push(job.clone());
        }
    }
    let rerun = run_plan(&tweaked, &opts(2, &dir));
    assert_eq!(rerun.executed(), 1);
    assert_eq!(rerun.cache_hits(), plan.len() - 1);
    assert!(!rerun.records[0].cached);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_jobs_execute_once_and_share_the_result() {
    let dir = tmp_dir("dedup");
    let job = JobSpec::NocPoint {
        net: NetSpec::Ring { nodes: 8 },
        pattern: TrafficPattern::UniformRandom,
        load: 0.1,
        cfg: tiny_cfg(42),
    };
    let mut plan = SweepPlan::new();
    for _ in 0..5 {
        plan.push(job.clone());
    }
    let report = run_plan(&plan, &opts(4, &dir));
    // All five positions resolve, but only one entry was ever simulated
    // and cached.
    assert_eq!(report.results.len(), 5);
    assert_eq!(ResultCache::open(&dir).len(), 1);
    let first = report.results[0].latency().avg_latency.to_bits();
    for r in &report.results {
        assert_eq!(r.latency().avg_latency.to_bits(), first);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
