//! A sweep job killed mid-run resumes from its checkpoint and produces
//! the *same content-addressed result* as an uninterrupted run.
//!
//! The interruption is fabricated the way a real one looks on disk: the
//! same simulation is driven partway by hand and its snapshot written
//! under the job's content hash, as if the worker process died right
//! after a periodic checkpoint. The re-run must pick that checkpoint up,
//! finish the remaining cycles, produce bit-identical output (verified
//! through the canonical result JSON), and clean its checkpoints up.

use flumen::{MzimControlUnit, RuntimeConfig, SystemTopology};
use flumen_noc::{CrossbarConfig, MzimCrossbar};
use flumen_sim::Snapshotable;
use flumen_sweep::hash::sha256_hex;
use flumen_sweep::{
    run_plan, BenchKind, BenchSize, BenchSpec, CheckpointStore, JobSpec, SweepOptions, SweepPlan,
    ToJson,
};
use flumen_system::SystemSim;
use flumen_workloads::taskgen::{self, ExecMode};
use flumen_workloads::Rotation3d;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flumen-sweep-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_job_resumes_to_the_same_result_hash() {
    let cfg = RuntimeConfig {
        max_cycles: 10_000_000,
        ..RuntimeConfig::paper()
    };
    let spec = JobSpec::FullRun {
        bench: BenchSpec {
            kind: BenchKind::Rotation3d,
            size: BenchSize::Small,
        },
        topology: SystemTopology::FlumenA,
        cfg: cfg.clone(),
    };
    let mut plan = SweepPlan::new();
    plan.push(spec.clone());

    // Uninterrupted reference run.
    let cache_a = tmp_dir("cache-a");
    let reference = run_plan(&plan, &SweepOptions::serial_in(cache_a.clone()));
    let ref_json = reference.results[0].to_json().to_canonical();
    let ref_cycles = reference.results[0].full_run().cycles;

    // Fabricate the kill: drive the identical simulation halfway and
    // leave its checkpoint on disk under the job's content hash.
    let ckpt_dir = tmp_dir("ckpts");
    let store = CheckpointStore::new(ckpt_dir.clone(), 1_000);
    {
        let bench = Rotation3d::small();
        let tasks = taskgen::generate(&bench, &cfg.system, ExecMode::Offload, &cfg.taskgen);
        let net = MzimCrossbar::new(cfg.system.chiplets, CrossbarConfig::default()).unwrap();
        let server = MzimControlUnit::new(cfg.control.clone());
        let mut sim = SystemSim::new(cfg.system.clone(), net, server, tasks);
        for _ in 0..ref_cycles / 2 {
            sim.step();
        }
        assert!(!sim.finished(), "checkpoint must land mid-run");
        let policy = store.policy_for(&spec.content_hash());
        policy.write(sim.cycle(), sim.snapshot()).unwrap();
        assert_eq!(policy.files().len(), 1);
    }

    // Re-run with checkpointing on and a fresh cache, so the job really
    // executes and must resume rather than start cold or hit the cache.
    let cache_b = tmp_dir("cache-b");
    let resumed = run_plan(
        &plan,
        &SweepOptions {
            checkpoint: Some(store.clone()),
            ..SweepOptions::serial_in(cache_b.clone())
        },
    );
    assert_eq!(resumed.executed(), 1);

    // Same spec → same job hash; resumed run → byte-identical result,
    // hence the same content-addressed result hash.
    assert_eq!(resumed.records[0].hash, reference.records[0].hash);
    let resumed_json = resumed.results[0].to_json().to_canonical();
    assert_eq!(
        sha256_hex(resumed_json.as_bytes()),
        sha256_hex(ref_json.as_bytes())
    );
    assert!(!resumed.results[0].full_run().truncated);

    // Completion cleared the job's checkpoints.
    assert!(store.policy_for(&spec.content_hash()).files().is_empty());

    for d in [cache_a, cache_b, ckpt_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
