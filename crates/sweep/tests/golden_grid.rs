//! Golden-snapshot regression test for the Figs. 14/15 sweep grid.
//!
//! Runs a reduced benchmark × topology grid (two small workloads on all
//! five fabrics — the same plan shape the speedup/EDP figures use) and
//! compares the headline numbers per run against a checked-in snapshot:
//! cycle counts and packet/op totals exactly, derived floats (seconds,
//! energy) to 1e-9 relative tolerance.
//!
//! When a change *intentionally* shifts the numbers, regenerate with
//!
//! ```text
//! FLUMEN_UPDATE_GOLDENS=1 cargo test -p flumen-sweep --test golden_grid
//! ```
//!
//! and commit the updated `tests/goldens/grid_small.json` together with
//! the change that explains it.

use flumen::SystemTopology;
use flumen_sweep::{run_plan, BenchKind, BenchSize, BenchSpec, JobSpec, SweepOptions, SweepPlan};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join("grid_small.json")
}

/// The reduced grid: two structurally different workloads (dense MVM
/// stream vs. SVD-partitioned rotation) on every topology.
fn reduced_grid() -> SweepPlan {
    let cfg = flumen::RuntimeConfig::paper();
    let mut plan = SweepPlan::new();
    for kind in [BenchKind::ImageBlur, BenchKind::Rotation3d] {
        for topology in SystemTopology::all() {
            plan.push(JobSpec::FullRun {
                bench: BenchSpec {
                    kind,
                    size: BenchSize::Small,
                },
                topology,
                cfg: cfg.clone(),
            });
        }
    }
    plan
}

type Row = flumen_sweep::Json;

fn snapshot_rows() -> Vec<Row> {
    use flumen_sweep::ToJson;
    let cfg = flumen::RuntimeConfig::paper();
    let dir = std::env::temp_dir().join(format!("flumen-golden-grid-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_plan(&reduced_grid(), &SweepOptions::serial_in(dir.clone()));
    let rows = report
        .results
        .iter()
        .map(|res| {
            let r = res.full_run();
            let mut row = flumen_sweep::Json::obj([
                ("bench", flumen_sweep::Json::Str(r.benchmark.clone())),
                (
                    "topology",
                    flumen_sweep::Json::Str(r.topology.name().to_string()),
                ),
                ("cycles", r.cycles.to_json()),
                ("core_ops", r.counts.core_ops.to_json()),
                ("nop_packets", r.counts.nop_packets.to_json()),
                ("delivered", r.net_stats.delivered.to_json()),
                ("seconds", r.seconds.to_json()),
                ("energy_j", r.energy.total_j().to_json()),
            ]);
            // Unit-suffixed headline keys (latency_ns, energy_pj, loss_db),
            // key names sourced from the flumen-units SUFFIX constants.
            if let (flumen_sweep::Json::Obj(map), flumen_sweep::Json::Obj(m)) =
                (&mut row, flumen_sweep::metrics::unit_metrics(r, &cfg))
            {
                map.extend(m);
            }
            row
        })
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-300)
}

#[test]
fn reduced_grid_matches_golden_snapshot() {
    let rows = snapshot_rows();
    let path = golden_path();

    if std::env::var("FLUMEN_UPDATE_GOLDENS").map(|v| v == "1") == Ok(true) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut text = flumen_sweep::Json::Arr(rows).to_canonical();
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        eprintln!("  [golden] rewrote {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with FLUMEN_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    let golden = flumen_sweep::Json::parse(&text).unwrap();
    let golden = golden.as_arr().unwrap();
    assert_eq!(
        golden.len(),
        rows.len(),
        "grid shape changed; regenerate the golden if intentional"
    );

    for (got, want) in rows.iter().zip(golden) {
        let label = format!(
            "{} on {}",
            want.get("bench").unwrap().as_str().unwrap(),
            want.get("topology").unwrap().as_str().unwrap()
        );
        for key in ["bench", "topology"] {
            assert_eq!(
                got.get(key).unwrap().as_str().unwrap(),
                want.get(key).unwrap().as_str().unwrap(),
                "{label}: row identity changed"
            );
        }
        // Integer observables must match exactly: the simulator is fully
        // deterministic, so any drift is a behaviour change.
        for key in ["cycles", "core_ops", "nop_packets", "delivered"] {
            assert_eq!(
                got.get(key).unwrap().as_u64().unwrap(),
                want.get(key).unwrap().as_u64().unwrap(),
                "{label}: {key} drifted from golden"
            );
        }
        // Derived floats get a tolerance so pure re-association in the
        // energy/time arithmetic does not count as a regression. The
        // unit-suffixed keys are built from the flumen-units SUFFIX
        // constants; `loss_db` is null on the electrical topologies.
        let latency_ns = flumen_sweep::metrics::latency_key();
        let energy_pj = flumen_sweep::metrics::energy_key();
        let loss_db = flumen_sweep::metrics::loss_key();
        for key in ["seconds", "energy_j", &latency_ns, &energy_pj, &loss_db] {
            let got_v = got.get(key).unwrap();
            let want_v = want.get(key).unwrap();
            if matches!(want_v, flumen_sweep::Json::Null) {
                assert_eq!(got_v, want_v, "{label}: {key} became non-null");
                continue;
            }
            let g = got_v.as_f64().unwrap();
            let w = want_v.as_f64().unwrap();
            assert!(
                rel_close(g, w, 1e-9),
                "{label}: {key} drifted from golden: {g} vs {w}"
            );
        }
    }
}
