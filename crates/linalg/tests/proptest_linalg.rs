//! Property-based tests for the linear-algebra substrate.

use flumen_linalg::{
    qr, random_orthogonal, random_unitary, spectral_norm, spectral_scale, svd, BlockMatrix, CMat,
    RMat, C64,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svd_reconstructs((rows, cols) in (small_dim(), small_dim()), seed in any::<u32>()) {
        let m = rmat_from_seed(rows, cols, seed);
        let f = svd(&m).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&m, 1e-8 * (1.0 + m.max_abs())));
    }

    #[test]
    fn svd_sigma_sorted_and_nonnegative((rows, cols) in (small_dim(), small_dim()), seed in any::<u32>()) {
        let m = rmat_from_seed(rows, cols, seed);
        let f = svd(&m).unwrap();
        prop_assert!(f.sigma.iter().all(|&s| s >= 0.0));
        prop_assert!(f.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_factors_orthogonal((rows, cols) in (small_dim(), small_dim()), seed in any::<u32>()) {
        let m = rmat_from_seed(rows, cols, seed);
        let f = svd(&m).unwrap();
        prop_assert!(f.u.transpose().matmul(&f.u).approx_eq(&RMat::identity(rows), 1e-8));
        prop_assert!(f.v.transpose().matmul(&f.v).approx_eq(&RMat::identity(cols), 1e-8));
    }

    #[test]
    fn spectral_scale_bounds_sigma(n in 1usize..8, seed in any::<u32>()) {
        let m = rmat_from_seed(n, n, seed);
        let (scaled, norm) = spectral_scale(&m).unwrap();
        let top = spectral_norm(&scaled).unwrap();
        prop_assert!(top <= 1.0 + 1e-9);
        prop_assert!(norm >= 0.0);
        // Scaling back reproduces the original.
        prop_assert!(scaled.scale(norm).approx_eq(&m, 1e-8 * (1.0 + m.max_abs())));
    }

    #[test]
    fn spectral_norm_submultiplicative(n in 2usize..6, s1 in any::<u32>(), s2 in any::<u32>()) {
        let a = rmat_from_seed(n, n, s1);
        let b = rmat_from_seed(n, n, s2);
        let nab = spectral_norm(&a.matmul(&b)).unwrap();
        let na = spectral_norm(&a).unwrap();
        let nb = spectral_norm(&b).unwrap();
        prop_assert!(nab <= na * nb + 1e-7 * (1.0 + na * nb));
    }

    #[test]
    fn qr_reconstructs(n in 1usize..9, seed in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let a = CMat::from_fn(n, n, |_, _| {
            use rand::Rng;
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let f = qr(&a);
        prop_assert!(f.q.is_unitary(1e-8));
        prop_assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-8));
    }

    #[test]
    fn random_unitary_preserves_norm(n in 1usize..10, seed in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let u = random_unitary(n, &mut rng);
        prop_assert!(u.is_unitary(1e-8));
        // Unitaries preserve vector 2-norm (energy conservation of E-fields).
        use rand::Rng;
        let x: Vec<C64> = (0..n).map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect();
        let y = u.mul_vec(&x);
        let nx: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ny: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((nx - ny).abs() < 1e-8 * (1.0 + nx));
    }

    #[test]
    fn orthogonal_has_det_magnitude_one_columns(n in 1usize..8, seed in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let q = random_orthogonal(n, &mut rng);
        for c in 0..n {
            let col_norm: f64 = (0..n).map(|r| q[(r, c)] * q[(r, c)]).sum::<f64>().sqrt();
            prop_assert!((col_norm - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn block_mvm_matches_dense((rows, cols) in (1usize..12, 1usize..12), n in 1usize..6, seed in any::<u32>()) {
        let m = rmat_from_seed(rows, cols, seed);
        let x: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.37).sin()).collect();
        let blocks = BlockMatrix::decompose(&m, n);
        let yb = blocks.mul_vec_exact(&x);
        let yd = m.mul_vec(&x);
        prop_assert_eq!(yb.len(), yd.len());
        for (a, b) in yb.iter().zip(yd.iter()) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn matmul_associative(n in 1usize..6, s1 in any::<u32>(), s2 in any::<u32>(), s3 in any::<u32>()) {
        let a = rmat_from_seed(n, n, s1);
        let b = rmat_from_seed(n, n, s2);
        let c = rmat_from_seed(n, n, s3);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-6 * (1.0 + left.max_abs())));
    }

    #[test]
    fn adjoint_reverses_products(n in 1usize..6, seed in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let u = random_unitary(n, &mut rng);
        let v = random_unitary(n, &mut rng);
        let lhs = u.matmul(&v).adjoint();
        let rhs = v.adjoint().matmul(&u.adjoint());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }
}

fn rmat_from_seed(rows: usize, cols: usize, seed: u32) -> RMat {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed as u64);
    RMat::from_fn(rows, cols, |_, _| rng.gen_range(-3.0..3.0))
}
