//! Kernel-equivalence harness: every matmul/MVM variant against a shared
//! fixed-accumulation-order reference.
//!
//! Two references, two contracts:
//!
//! * **Seed order** (`seed_matmul` / `seed_mul_vec`): ascending-`k` fold
//!   with each complex product rounded before accumulation and exact-zero
//!   `A` elements skipped. `CMat::matmul`, `matmul_into`, `mul_vec` and
//!   `mul_vec_into` promise **bit-exact** agreement with it — asserted
//!   here with `f64::to_bits`, including adversarial shapes (`n = 1`, odd
//!   `n`, 127/129, non-square) and denormal/overflow inputs.
//! * **Pinned FMA order** (`fma_matmul`): the same ascending-`k` walk but
//!   each term folded with one fused multiply-add per component and **no**
//!   zero skip. `CMat::matmul_simd` / `matmul_simd_into` promise bit-exact
//!   agreement with it on *every* backend (AVX-512 / AVX2 / portable) —
//!   lanes hold distinct output columns and are never reduced
//!   horizontally, so vector width cannot change any element's chain.
//!   Forcing `FLUMEN_SIMD=0` (the CI matrix does) re-runs these
//!   assertions on the portable tier, which is what makes the
//!   cross-backend bit-equality claim testable without multi-process
//!   tricks.
//!
//! Between the two contracts (SIMD vs seed order) equality is only
//! approximate: the fused chain saves one rounding per term, so the
//! elementwise error is bounded by `≈ 2·k·ε` times the magnitude sum of
//! the products — a couple of ULPs for the unit-range inputs used here.
//! That tolerance is asserted too, with the bound computed per element,
//! not hand-waved globally.
//!
//! Batched-MVM equivalence (batch == sequence of singles, bit-exact) is
//! the photonics layer's contract and is pinned in
//! `crates/photonics/tests/batched_conservation.rs`.

use flumen_linalg::{CMat, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regular shapes plus the adversarial ones: 1, odd, power-of-two ± 1.
/// (The vendored proptest stand-in has no `prop_oneof`, so this is a
/// hand-rolled weighted strategy.)
struct Dim;

impl Strategy for Dim {
    type Value = usize;
    fn generate(&self, rng: &mut proptest::TestRng) -> usize {
        match rng.gen_range(0u32..7) {
            0 => 31,
            1 => 127,
            2 => 129,
            _ => rng.gen_range(1usize..17),
        }
    }
}

fn dim() -> Dim {
    Dim
}

fn cmat_from_seed(rows: usize, cols: usize, seed: u32, zeros: bool) -> CMat {
    let mut rng = StdRng::seed_from_u64(seed as u64);
    CMat::from_fn(rows, cols, |_, _| {
        if zeros && rng.gen_bool(0.15) {
            C64::ZERO
        } else {
            C64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0))
        }
    })
}

/// The seed's kernel: k-outer, per-term rounding, zero-`A` skip.
fn seed_matmul(a: &CMat, b: &CMat) -> CMat {
    let mut out = CMat::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(r, k)];
            if av == C64::ZERO {
                continue;
            }
            for c in 0..b.cols() {
                let t = out[(r, c)] + av * b[(k, c)];
                out[(r, c)] = t;
            }
        }
    }
    out
}

/// The seed's MVM fold: ascending-`k`, per-term rounding, no skip.
fn seed_mul_vec(a: &CMat, x: &[C64]) -> Vec<C64> {
    (0..a.rows())
        .map(|r| {
            let mut acc = C64::ZERO;
            for c in 0..a.cols() {
                acc += a[(r, c)] * x[c];
            }
            acc
        })
        .collect()
}

/// The pinned SIMD accumulation order: ascending-`k` FMA chains from 0.0,
/// no zero skip. This is the scalar transliteration of what every SIMD
/// lane computes for its output element.
fn fma_matmul(a: &CMat, b: &CMat) -> CMat {
    let mut out = CMat::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for c in 0..b.cols() {
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for k in 0..a.cols() {
                let av = a[(r, k)];
                let bv = b[(k, c)];
                re = (-av.im).mul_add(bv.im, re);
                re = av.re.mul_add(bv.re, re);
                im = av.im.mul_add(bv.re, im);
                im = av.re.mul_add(bv.im, im);
            }
            out[(r, c)] = C64::new(re, im);
        }
    }
    out
}

fn bit_identical(a: &CMat, b: &CMat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && (0..a.rows()).all(|r| {
            (0..a.cols()).all(|c| {
                a[(r, c)].re.to_bits() == b[(r, c)].re.to_bits()
                    && a[(r, c)].im.to_bits() == b[(r, c)].im.to_bits()
            })
        })
}

/// Elementwise bound on |seed-order − fused-order|: each of the `k` terms
/// loses at most one rounding (`ε/2` relative) per component in either
/// chain, and the running sums accumulate at most `k` more; `4·k·ε·Σ|t|`
/// over-covers both with headroom.
fn seed_vs_fma_tol(a: &CMat, b: &CMat, r: usize, c: usize) -> f64 {
    let k = a.cols();
    let mag: f64 = (0..k)
        .map(|kk| {
            let (av, bv) = (a[(r, kk)], b[(kk, c)]);
            av.re.abs().max(av.im.abs()) * bv.re.abs().max(bv.im.abs())
        })
        .sum();
    4.0 * k as f64 * f64::EPSILON * 2.0 * mag
}

proptest! {
    // The adversarial dims reach n=129 (≈2·129³ FLAM per case), so keep
    // the case count moderate; the shapes are what matter here.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seed-order family: `matmul` and `matmul_into` are bit-exact
    /// against the seed reference on every shape.
    #[test]
    fn seed_family_bit_exact(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1, true);
        let b = cmat_from_seed(k, n, s2, true);
        let reference = seed_matmul(&a, &b);
        prop_assert!(bit_identical(&reference, &a.matmul(&b)));
        let mut out = CMat::from_fn(m, n, |_, _| C64::new(7.0, -7.0));
        a.matmul_into(&b, &mut out);
        prop_assert!(bit_identical(&reference, &out));
    }

    /// SIMD family: `matmul_simd` / `matmul_simd_into` are bit-exact
    /// against the pinned FMA reference on every shape — on whichever
    /// backend this process dispatched to (the CI matrix covers both
    /// hardware and portable via `FLUMEN_SIMD`).
    #[test]
    fn simd_family_bit_exact_vs_pinned_reference(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1, true);
        let b = cmat_from_seed(k, n, s2, true);
        let reference = fma_matmul(&a, &b);
        prop_assert!(bit_identical(&reference, &a.matmul_simd(&b)));
        let mut out = CMat::from_fn(m, n, |_, _| C64::new(-3.0, 3.0));
        a.matmul_simd_into(&b, &mut out);
        prop_assert!(bit_identical(&reference, &out));
    }

    /// Across the two contracts agreement is approximate, with the
    /// documented per-element bound.
    #[test]
    fn simd_vs_seed_within_documented_tolerance(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1, true);
        let b = cmat_from_seed(k, n, s2, true);
        let seed = seed_matmul(&a, &b);
        let simd = a.matmul_simd(&b);
        for r in 0..m {
            for c in 0..n {
                let tol = seed_vs_fma_tol(&a, &b, r, c);
                let d = seed[(r, c)] - simd[(r, c)];
                prop_assert!(
                    d.re.abs() <= tol && d.im.abs() <= tol,
                    "({r},{c}): diff {d}, tol {tol:e}"
                );
            }
        }
    }

    /// An MVM is a 1-column matmul: for zero-free `A` (so the zero-skip
    /// never fires) the seed-order matmul of a single column bit-equals
    /// `mul_vec` / `mul_vec_into` — the MVM and matmul variants share one
    /// accumulation order.
    #[test]
    fn mvm_is_one_column_matmul(
        (m, k) in (dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1, false);
        let xm = cmat_from_seed(k, 1, s2, false);
        let x: Vec<C64> = (0..k).map(|i| xm[(i, 0)]).collect();
        let via_matmul = a.matmul(&xm);
        let via_vec = a.mul_vec(&x);
        let mut via_into = vec![C64::new(9.0, 9.0); m];
        a.mul_vec_into(&x, &mut via_into);
        for r in 0..m {
            prop_assert_eq!(via_matmul[(r, 0)].re.to_bits(), via_vec[r].re.to_bits());
            prop_assert_eq!(via_matmul[(r, 0)].im.to_bits(), via_vec[r].im.to_bits());
            prop_assert_eq!(via_matmul[(r, 0)].re.to_bits(), via_into[r].re.to_bits());
            prop_assert_eq!(via_matmul[(r, 0)].im.to_bits(), via_into[r].im.to_bits());
        }
        let reference = seed_mul_vec(&a, &x);
        for r in 0..m {
            prop_assert_eq!(reference[r].re.to_bits(), via_vec[r].re.to_bits());
            prop_assert_eq!(reference[r].im.to_bits(), via_vec[r].im.to_bits());
        }
    }
}

/// Denormal and near-overflow magnitudes mixed into one product: each
/// variant must still match its own reference bit-for-bit (the references
/// make no finiteness assumptions).
#[test]
fn extreme_magnitude_inputs_stay_bit_exact() {
    let vals = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,           // smallest normal
        f64::MIN_POSITIVE / 1024.0,  // denormal
        -f64::MIN_POSITIVE / 4096.0, // denormal, negative
        1.0e308,                     // near overflow
        -1.0e308,
        1.0e-300,
        3.5,
        -0.125,
    ];
    for n in [1usize, 2, 5, 8, 13] {
        let a = CMat::from_fn(n, n, |r, c| {
            C64::new(
                vals[(r * 3 + c) % vals.len()],
                vals[(r + c * 5) % vals.len()],
            )
        });
        let b = CMat::from_fn(n, n, |r, c| {
            C64::new(
                vals[(r * 7 + c + 1) % vals.len()],
                vals[(r + c + 2) % vals.len()],
            )
        });
        assert!(bit_identical(&seed_matmul(&a, &b), &a.matmul(&b)), "n={n}");
        assert!(
            bit_identical(&fma_matmul(&a, &b), &a.matmul_simd(&b)),
            "n={n} backend={}",
            flumen_linalg::simd_backend().name()
        );
    }
}

/// The dispatch override is observable: whatever tier this process
/// resolved, the SIMD result equals the portable-order reference — the
/// property that makes `FLUMEN_SIMD` a speed knob, never a results knob.
#[test]
fn backend_identity_holds_for_resolved_tier() {
    let n = 33;
    let mut rng = StdRng::seed_from_u64(2026);
    let a = CMat::from_fn(n, n, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let b = CMat::from_fn(n, n, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    assert!(bit_identical(&fma_matmul(&a, &b), &a.matmul_simd(&b)));
}
