//! Bit-identity properties of the dense kernels.
//!
//! The optimized matmul/mul_vec paths (`matmul`, `matmul_into`,
//! `mul_vec_into`) are only allowed to rearrange *memory
//! traffic*, never the floating-point fold: every output element must be
//! the ascending-`k` sum `((0 + a₀b₀) + a₁b₁) + …` with zero `A`-elements
//! skipped, exactly as the seed's triple loop computed it. These tests pin
//! that down to the bit level (`f64::to_bits`, not approximate equality)
//! against naive references reimplemented here, on random square and
//! rectangular shapes from 1 to 16 — so the golden-grid results can never
//! drift through a kernel "optimization".

use flumen_linalg::{CMat, RMat, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dim() -> impl Strategy<Value = usize> {
    1usize..17
}

/// Random complex matrix with a sprinkling of exact zeros so the
/// zero-`A` skip path is exercised.
fn cmat_from_seed(rows: usize, cols: usize, seed: u32) -> CMat {
    let mut rng = StdRng::seed_from_u64(seed as u64);
    CMat::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(0.15) {
            C64::ZERO
        } else {
            C64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0))
        }
    })
}

fn rmat_from_seed(rows: usize, cols: usize, seed: u32) -> RMat {
    let mut rng = StdRng::seed_from_u64(seed as u64);
    RMat::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(0.15) {
            0.0
        } else {
            rng.gen_range(-2.0..2.0)
        }
    })
}

/// The seed's `CMat` kernel: k-outer, indexed writes, zero-`A` skip.
fn naive_cmatmul(a: &CMat, b: &CMat) -> CMat {
    let mut out = CMat::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(r, k)];
            if av == C64::ZERO {
                continue;
            }
            for c in 0..b.cols() {
                let t = out[(r, c)] + av * b[(k, c)];
                out[(r, c)] = t;
            }
        }
    }
    out
}

/// The seed's `RMat` kernel.
fn naive_rmatmul(a: &RMat, b: &RMat) -> RMat {
    let mut out = RMat::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(r, k)];
            if av == 0.0 {
                continue;
            }
            for c in 0..b.cols() {
                let t = out[(r, c)] + av * b[(k, c)];
                out[(r, c)] = t;
            }
        }
    }
    out
}

/// Left-to-right fold per row, the pinned `mul_vec` summation order.
fn naive_cmul_vec(a: &CMat, x: &[C64]) -> Vec<C64> {
    (0..a.rows())
        .map(|r| {
            let mut acc = C64::ZERO;
            for c in 0..a.cols() {
                acc += a[(r, c)] * x[c];
            }
            acc
        })
        .collect()
}

fn cmats_bit_identical(a: &CMat, b: &CMat) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    (0..a.rows()).all(|r| {
        (0..a.cols()).all(|c| {
            a[(r, c)].re.to_bits() == b[(r, c)].re.to_bits()
                && a[(r, c)].im.to_bits() == b[(r, c)].im.to_bits()
        })
    })
}

fn rmats_bit_identical(a: &RMat, b: &RMat) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    (0..a.rows()).all(|r| (0..a.cols()).all(|c| a[(r, c)].to_bits() == b[(r, c)].to_bits()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cmat_matmul_bit_identical_to_naive(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1);
        let b = cmat_from_seed(k, n, s2);
        let reference = naive_cmatmul(&a, &b);
        prop_assert!(cmats_bit_identical(&reference, &a.matmul(&b)));
    }

    #[test]
    fn cmat_matmul_into_bit_identical_and_reusable(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1);
        let b = cmat_from_seed(k, n, s2);
        let reference = naive_cmatmul(&a, &b);
        // Start from a dirty buffer: matmul_into must fully overwrite it.
        let mut out = CMat::from_fn(m, n, |_, _| C64::new(7.0, -7.0));
        a.matmul_into(&b, &mut out);
        prop_assert!(cmats_bit_identical(&reference, &out));
        // Reusing the buffer a second time is just as clean.
        a.matmul_into(&b, &mut out);
        prop_assert!(cmats_bit_identical(&reference, &out));
    }

    #[test]
    fn rmat_matmul_bit_identical_to_naive(
        (m, k, n) in (dim(), dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = rmat_from_seed(m, k, s1);
        let b = rmat_from_seed(k, n, s2);
        let reference = naive_rmatmul(&a, &b);
        prop_assert!(rmats_bit_identical(&reference, &a.matmul(&b)));
        let mut out = RMat::from_fn(m, n, |_, _| 42.0);
        a.matmul_into(&b, &mut out);
        prop_assert!(rmats_bit_identical(&reference, &out));
    }

    #[test]
    fn cmat_mul_vec_pins_summation_order(
        (m, k) in (dim(), dim()), s1 in any::<u32>(), s2 in any::<u32>()
    ) {
        let a = cmat_from_seed(m, k, s1);
        let mut rng = StdRng::seed_from_u64(s2 as u64);
        let x: Vec<C64> = (0..k)
            .map(|_| C64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
            .collect();
        let reference = naive_cmul_vec(&a, &x);
        let via_vec = a.mul_vec(&x);
        let mut via_into = vec![C64::new(9.0, 9.0); m];
        a.mul_vec_into(&x, &mut via_into);
        for r in 0..m {
            prop_assert_eq!(reference[r].re.to_bits(), via_vec[r].re.to_bits());
            prop_assert_eq!(reference[r].im.to_bits(), via_vec[r].im.to_bits());
            prop_assert_eq!(reference[r].re.to_bits(), via_into[r].re.to_bits());
            prop_assert_eq!(reference[r].im.to_bits(), via_into[r].im.to_bits());
        }
    }
}
