//! Real singular value decomposition via one-sided Jacobi.
//!
//! The SVD is the mathematical heart of the Flumen computation path: an
//! arbitrary weight block `M` is realized photonically as `M = U Σ Vᵀ`
//! (paper §3.1.1, Fig. 4) with `U`/`Vᵀ` programmed into unitary MZIM sections
//! and `Σ` into the attenuating-MZI column. The attenuators can only
//! *attenuate*, which forces `0 ≤ σᵢ ≤ 1` and motivates the spectral-norm
//! pre-scaling implemented in [`spectral_scale`].

use crate::{LinalgError, RMat, Result};

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// The result of a singular value decomposition `A = U · diag(σ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m×m`, orthogonal).
    pub u: RMat,
    /// Singular values, non-negative, sorted in descending order
    /// (`min(m, n)` entries).
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n×n`, orthogonal). Note this is `V`, not `Vᵀ`.
    pub v: RMat,
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵀ`.
    pub fn reconstruct(&self) -> RMat {
        let m = self.u.rows();
        let n = self.v.rows();
        let k = self.sigma.len();
        let mut us = RMat::zeros(m, n);
        for r in 0..m {
            for c in 0..k {
                us[(r, c)] = self.u[(r, c)] * self.sigma[c];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// The spectral norm `‖A‖₂ = σ_max` (0 for an all-zero matrix).
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }
}

/// Computes the SVD of a real matrix using one-sided Jacobi rotations.
///
/// One-sided Jacobi orthogonalizes pairs of columns of a working copy of `A`
/// with plane rotations accumulated into `V`; on convergence the column norms
/// are the singular values and the normalized columns are `U`.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] if the sweep budget is exhausted —
/// in practice this does not happen for finite inputs.
///
/// # Examples
///
/// ```
/// use flumen_linalg::{svd, RMat};
/// let a = RMat::from_rows(2, 2, vec![3.0, 0.0, 4.0, 5.0])?;
/// let f = svd(&a)?;
/// assert!(f.reconstruct().approx_eq(&a, 1e-9));
/// # Ok::<(), flumen_linalg::LinalgError>(())
/// ```
pub fn svd(a: &RMat) -> Result<Svd> {
    if a.rows() < a.cols() {
        // Work on the transpose and swap the factors.
        let f = svd(&a.transpose())?;
        return Ok(Svd {
            u: f.v,
            sigma: f.sigma,
            v: f.u,
        });
    }

    let m = a.rows();
    let n = a.cols();
    let mut work = a.clone(); // m×n, columns get orthogonalized
    let mut v = RMat::identity(n);
    let eps = 1e-12;
    let scale_floor = 1e-28 * a.frobenius_norm().max(1e-300).powi(2);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for r in 0..m {
                    let x = work[(r, p)];
                    let y = work[(r, q)];
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() + scale_floor {
                    continue;
                }
                rotated = true;
                // Jacobi rotation that annihilates the off-diagonal entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let cs = 1.0 / (1.0 + t * t).sqrt();
                let sn = cs * t;
                for r in 0..m {
                    let x = work[(r, p)];
                    let y = work[(r, q)];
                    work[(r, p)] = cs * x - sn * y;
                    work[(r, q)] = sn * x + cs * y;
                }
                for r in 0..n {
                    let x = v[(r, p)];
                    let y = v[(r, q)];
                    v[(r, p)] = cs * x - sn * y;
                    v[(r, q)] = sn * x + cs * y;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence { sweeps: MAX_SWEEPS });
    }

    // Column norms are the singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma: Vec<f64> = (0..n)
        .map(|c| {
            (0..m)
                .map(|r| work[(r, c)] * work[(r, c)])
                .sum::<f64>()
                .sqrt()
        })
        .collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap());

    let mut u = RMat::zeros(m, m);
    let mut v_sorted = RMat::zeros(n, n);
    let mut sigma_sorted = vec![0.0; n];
    let sigma_max = order.first().map(|&c| sigma[c]).unwrap_or(0.0);
    // Build U columns by modified Gram-Schmidt over the (σ-descending)
    // work columns: normalizing `work/σ` directly would amplify round-off
    // into wildly non-orthogonal columns whenever σ is tiny.
    let mut rank = 0usize;
    for (new_c, &old_c) in order.iter().enumerate() {
        sigma_sorted[new_c] = sigma[old_c];
        for r in 0..n {
            v_sorted[(r, new_c)] = v[(r, old_c)];
        }
        let mut col: Vec<f64> = (0..m).map(|r| work[(r, old_c)]).collect();
        for p in 0..rank {
            let dot: f64 = (0..m).map(|r| col[r] * u[(r, p)]).sum();
            for r in 0..m {
                col[r] -= dot * u[(r, p)];
            }
        }
        let norm: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 * sigma_max.max(1e-300) && norm > 1e-300 {
            debug_assert_eq!(rank, new_c, "nonzero σ columns must be a prefix");
            for r in 0..m {
                u[(r, rank)] = col[r] / norm;
            }
            rank += 1;
        }
    }
    sigma = sigma_sorted;
    // Numerically-zero directions (and the tall-matrix null space) get an
    // orthonormal completion; they contribute ≤ 1e-12·σ_max to the product.
    complete_orthonormal_basis(&mut u, rank);

    Ok(Svd {
        u,
        sigma,
        v: v_sorted,
    })
}

/// Fills columns `rank..m` of `u` with an orthonormal completion via
/// modified Gram-Schmidt against the standard basis.
fn complete_orthonormal_basis(u: &mut RMat, rank: usize) {
    let m = u.rows();
    let mut next = rank;
    let mut candidate = 0usize;
    while next < m && candidate < 2 * m {
        // Start from a standard basis vector (cycled), orthogonalize.
        let mut vec: Vec<f64> = (0..m)
            .map(|r| if r == candidate % m { 1.0 } else { 0.0 })
            .collect();
        for c in 0..next {
            let dot: f64 = (0..m).map(|r| vec[r] * u[(r, c)]).sum();
            for r in 0..m {
                vec[r] -= dot * u[(r, c)];
            }
        }
        let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-8 {
            for r in 0..m {
                u[(r, next)] = vec[r] / norm;
            }
            next += 1;
        }
        candidate += 1;
    }
    debug_assert_eq!(next, m, "failed to complete orthonormal basis");
}

/// The spectral norm `‖A‖₂` (largest singular value).
///
/// # Errors
///
/// Propagates [`LinalgError::NoConvergence`] from the underlying SVD.
pub fn spectral_norm(a: &RMat) -> Result<f64> {
    Ok(svd(a)?.spectral_norm())
}

/// Scales `M` so its largest singular value is exactly 1 (paper §3.3.1):
/// `M_s = M / ‖M‖₂`, which guarantees all `σᵢ(M_s) ∈ [0, 1]` and hence that
/// `M_s` is implementable in a passive (non-amplifying) SVD MZIM.
///
/// Returns the scaled matrix and the scale factor `‖M‖₂` needed to recover
/// true outputs (`b = ‖M‖₂ · b_s`). An all-zero matrix is returned unchanged
/// with scale 1.
///
/// # Errors
///
/// Propagates [`LinalgError::NoConvergence`] from the underlying SVD.
pub fn spectral_scale(m: &RMat) -> Result<(RMat, f64)> {
    let norm = spectral_norm(m)?;
    if norm <= 1e-300 {
        return Ok((m.clone(), 1.0));
    }
    Ok((m.scale(1.0 / norm), norm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_orthogonal;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_mat(rng: &mut StdRng, m: usize, n: usize) -> RMat {
        RMat::from_fn(m, n, |_, _| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn reconstruct_square() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 4, 8] {
            let a = random_mat(&mut rng, n, n);
            let f = svd(&a).unwrap();
            assert!(f.reconstruct().approx_eq(&a, 1e-9), "n={n}");
        }
    }

    #[test]
    fn reconstruct_rectangular() {
        let mut rng = StdRng::seed_from_u64(12);
        for (m, n) in [(5usize, 3usize), (3, 5), (8, 2), (2, 8)] {
            let a = random_mat(&mut rng, m, n);
            let f = svd(&a).unwrap();
            assert!(f.reconstruct().approx_eq(&a, 1e-9), "{m}x{n}");
            assert_eq!(f.u.rows(), m);
            assert_eq!(f.v.rows(), n);
            assert_eq!(f.sigma.len(), m.min(n));
        }
    }

    #[test]
    fn factors_are_orthogonal() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_mat(&mut rng, 6, 4);
        let f = svd(&a).unwrap();
        assert!(f
            .u
            .transpose()
            .matmul(&f.u)
            .approx_eq(&RMat::identity(6), 1e-9));
        assert!(f
            .v
            .transpose()
            .matmul(&f.v)
            .approx_eq(&RMat::identity(4), 1e-9));
    }

    #[test]
    fn sigma_sorted_nonnegative() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = random_mat(&mut rng, 7, 7);
        let f = svd(&a).unwrap();
        for w in f.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(f.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = RMat::from_fn(3, 3, |r, c| if r == c { [3.0, 1.0, 2.0][r] } else { 0.0 });
        let f = svd(&a).unwrap();
        assert!((f.sigma[0] - 3.0).abs() < 1e-10);
        assert!((f.sigma[1] - 2.0).abs() < 1e-10);
        assert!((f.sigma[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_svd() {
        let a = RMat::zeros(3, 3);
        let f = svd(&a).unwrap();
        assert!(f.sigma.iter().all(|&s| s == 0.0));
        assert!(f
            .u
            .transpose()
            .matmul(&f.u)
            .approx_eq(&RMat::identity(3), 1e-9));
        assert!(f.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn rank_one_matrix() {
        let a = RMat::from_fn(4, 4, |r, c| ((r + 1) * (c + 1)) as f64);
        let f = svd(&a).unwrap();
        assert!(
            f.sigma[1] < 1e-9,
            "rank-1 matrix should have one nonzero sigma"
        );
        assert!(f.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn orthogonal_matrix_has_unit_sigmas() {
        let mut rng = StdRng::seed_from_u64(15);
        let q = random_orthogonal(5, &mut rng);
        let f = svd(&q).unwrap();
        for s in &f.sigma {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spectral_norm_of_scaled_identity() {
        let a = RMat::identity(4).scale(2.5);
        assert!((spectral_norm(&a).unwrap() - 2.5).abs() < 1e-10);
    }

    #[test]
    fn spectral_scale_caps_sigma_at_one() {
        let mut rng = StdRng::seed_from_u64(16);
        let a = RMat::from_fn(6, 6, |_, _| rng.gen_range(-5.0..5.0));
        let (scaled, norm) = spectral_scale(&a).unwrap();
        let f = svd(&scaled).unwrap();
        assert!((f.sigma[0] - 1.0).abs() < 1e-9);
        assert!(scaled.scale(norm).approx_eq(&a, 1e-9));
    }

    #[test]
    fn spectral_scale_zero_matrix() {
        let a = RMat::zeros(2, 2);
        let (scaled, norm) = spectral_scale(&a).unwrap();
        assert_eq!(norm, 1.0);
        assert!(scaled.approx_eq(&a, 0.0));
    }

    #[test]
    fn singular_values_match_gram_eigen() {
        // σᵢ² are eigenvalues of AᵀA; check trace identity Σσ² = ‖A‖_F².
        let mut rng = StdRng::seed_from_u64(17);
        let a = random_mat(&mut rng, 5, 5);
        let f = svd(&a).unwrap();
        let fro2: f64 = a.frobenius_norm().powi(2);
        let sum_s2: f64 = f.sigma.iter().map(|s| s * s).sum();
        assert!((fro2 - sum_s2).abs() < 1e-9 * fro2.max(1.0));
    }
}
