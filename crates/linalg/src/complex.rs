//! Double-precision complex numbers.
//!
//! The photonic transfer-matrix math in [`flumen-photonics`] operates on
//! optical E-fields, which are inherently complex-valued. This module provides
//! a small, dependency-free complex type, [`C64`], with the handful of
//! operations the simulator needs (arithmetic, conjugation, polar forms).
//!
//! [`flumen-photonics`]: https://example.com/flumen

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use flumen_linalg::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::new(3.0, -1.0);
/// assert_eq!(a + b, C64::new(4.0, 1.0));
/// assert_eq!(a * C64::I, C64::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flumen_linalg::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-magnitude phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// The complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// The magnitude `|z| = sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|²`.
    ///
    /// Optical power is proportional to `|E|²`, so this is the hot path in
    /// readout code; it avoids the square root of [`C64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// The principal square root.
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::from_re(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    // Division by a complex number *is* multiplication by its inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::ZERO, C64::new(0.0, 0.0));
        assert_eq!(C64::ONE, C64::new(1.0, 0.0));
        assert_eq!(C64::I, C64::new(0.0, 1.0));
        assert_eq!(C64::from_re(2.5), C64::new(2.5, 0.0));
        assert_eq!(C64::from(3.0), C64::new(3.0, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(2.0, -3.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.inv() - C64::ONE).abs() < 1e-14);
        assert_eq!(-z, C64::new(-2.0, 3.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((C64::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn division() {
        let a = C64::new(1.0, 1.0);
        let b = C64::new(0.0, 1.0);
        let q = a / b;
        assert!(q.approx_eq(C64::new(1.0, -1.0), 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-1.0, 0.5);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
    }

    #[test]
    fn real_scalar_ops() {
        let z = C64::new(1.0, -2.0);
        assert_eq!(z * 2.0, C64::new(2.0, -4.0));
        assert_eq!(2.0 * z, C64::new(2.0, -4.0));
        assert_eq!(z / 2.0, C64::new(0.5, -1.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::ONE;
        assert_eq!(z, C64::new(2.0, 1.0));
        z -= C64::I;
        assert_eq!(z, C64::new(2.0, 0.0));
        z *= C64::I;
        assert_eq!(z, C64::new(0.0, 2.0));
        z /= C64::new(0.0, 2.0);
        assert!(z.approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", C64::ZERO).is_empty());
    }
}
