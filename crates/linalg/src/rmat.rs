//! Dense real matrices (row-major).
//!
//! Weight matrices, images and activations in the benchmark workloads are
//! real-valued; [`RMat`] carries them up to the point where they are lowered
//! onto the photonic fabric (which works in [`crate::CMat`] E-field space).

use crate::{CMat, LinalgError, Result, C64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major real matrix.
///
/// # Examples
///
/// ```
/// use flumen_linalg::RMat;
///
/// let a = RMat::from_fn(2, 2, |r, c| (r + c) as f64);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.mul_vec(&x), vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMat {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        RMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = RMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = RMat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(RMat { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A borrowed view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> RMat {
        RMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Allocation-free matrix-vector product: `y ← A·x`.
    ///
    /// Summation order per element is the ascending-column left-to-right
    /// fold, identical to [`RMat::mul_vec`] bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector/matrix dimension mismatch");
        assert_eq!(y.len(), self.rows, "output/matrix dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            *out = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &RMat) -> RMat {
        let mut out = RMat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Allocation-free matrix product: `out ← A·B`.
    ///
    /// k-outer kernel streaming contiguous `B` rows; per output element the
    /// accumulation order is ascending `k` with zero-`A` terms skipped —
    /// bit-identical to the naive triple loop (see
    /// `tests/proptest_kernels.rs`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_into(&self, other: &RMat, out: &mut RMat) {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions do not match: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "output must be {}×{}, got {}×{}",
            self.rows,
            other.cols,
            out.rows,
            out.cols
        );
        out.data.fill(0.0);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Scales every element by `k`.
    pub fn scale(&self, k: f64) -> RMat {
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * k).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// Element-wise approximate equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &RMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Lifts into complex E-field space (imaginary parts zero).
    pub fn to_cmat(&self) -> CMat {
        CMat::from_fn(self.rows, self.cols, |r, c| C64::from_re(self[(r, c)]))
    }

    /// Extracts the real parts of a complex matrix.
    pub fn from_cmat_re(m: &CMat) -> RMat {
        RMat::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)].re)
    }

    /// Zero-pads to `new_rows × new_cols` (paper Eq. 2), placing `self` in
    /// the top-left corner.
    ///
    /// # Panics
    ///
    /// Panics if the new shape is smaller than the current shape.
    pub fn zero_pad(&self, new_rows: usize, new_cols: usize) -> RMat {
        assert!(
            new_rows >= self.rows && new_cols >= self.cols,
            "zero_pad target must not shrink the matrix"
        );
        let mut out = RMat::zeros(new_rows, new_cols);
        for r in 0..self.rows {
            out.data[r * new_cols..r * new_cols + self.cols].copy_from_slice(self.row(r));
        }
        out
    }

    /// Extracts the `rows×cols` sub-block whose top-left corner is
    /// `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn sub_block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> RMat {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        RMat::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }
}

impl Index<(usize, usize)> for RMat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &RMat {
    type Output = RMat;
    fn add(self, rhs: &RMat) -> RMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &RMat {
    type Output = RMat;
    fn sub(self, rhs: &RMat) -> RMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        RMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &RMat {
    type Output = RMat;
    fn mul(self, rhs: &RMat) -> RMat {
        self.matmul(rhs)
    }
}

impl fmt::Display for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = RMat::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(RMat::identity(3).matmul(&a), a);
    }

    #[test]
    fn known_product() {
        let a = RMat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = RMat::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let p = a.matmul(&b);
        assert_eq!(
            p,
            RMat::from_rows(2, 2, vec![19.0, 22.0, 43.0, 50.0]).unwrap()
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = RMat::from_fn(2, 5, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = RMat::from_fn(3, 4, |r, c| (r + 2 * c) as f64);
        let x: Vec<f64> = (0..4).map(|i| i as f64 + 0.5).collect();
        let xm = RMat::from_rows(4, 1, x.clone()).unwrap();
        let y1 = a.mul_vec(&x);
        let y2 = a.matmul(&xm);
        for r in 0..3 {
            assert!((y1[r] - y2[(r, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_pad_places_top_left() {
        let a = RMat::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = a.zero_pad(3, 4);
        assert_eq!(p[(0, 0)], 1.0);
        assert_eq!(p[(1, 1)], 4.0);
        assert_eq!(p[(2, 3)], 0.0);
        assert_eq!(p[(0, 2)], 0.0);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 4);
    }

    #[test]
    fn sub_block_roundtrip() {
        let a = RMat::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let b = a.sub_block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], 6.0);
        assert_eq!(b[(1, 1)], 11.0);
    }

    #[test]
    fn pad_then_extract_is_identity() {
        let a = RMat::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        let padded = a.zero_pad(8, 8);
        assert!(padded.sub_block(0, 0, 3, 5).approx_eq(&a, 0.0));
    }

    #[test]
    fn complex_roundtrip() {
        let a = RMat::from_fn(2, 3, |r, c| r as f64 - c as f64);
        assert!(RMat::from_cmat_re(&a.to_cmat()).approx_eq(&a, 0.0));
    }

    #[test]
    fn row_col_access() {
        let a = RMat::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(a.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(a.col(2), vec![2.0, 5.0]);
    }

    #[test]
    fn norms() {
        let a = RMat::from_rows(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn operators() {
        let a = RMat::identity(2);
        let b = a.scale(2.0);
        assert_eq!((&a + &a), b);
        assert_eq!((&b - &a), a);
        assert_eq!((&a * &b), b);
    }
}
