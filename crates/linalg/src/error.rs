//! Error types for the linear-algebra substrate.

use std::error::Error;
use std::fmt;

/// A convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A buffer or matrix shape did not match the expected size.
    DimensionMismatch {
        /// Number of elements expected.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// An index list was not a valid permutation of `0..n`.
    NotAPermutation,
    /// An iterative routine (SVD, decomposition) failed to converge.
    NoConvergence {
        /// The iteration/sweep budget that was exhausted.
        sweeps: usize,
    },
    /// A matrix expected to be unitary was not (within tolerance).
    NotUnitary {
        /// Measured deviation `‖A*A − I‖_max`.
        deviation_milli: u64,
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} elements, got {actual}"
                )
            }
            LinalgError::NotAPermutation => write!(f, "index list is not a permutation"),
            LinalgError::NoConvergence { sweeps } => {
                write!(f, "iteration did not converge within {sweeps} sweeps")
            }
            LinalgError::NotUnitary { deviation_milli } => write!(
                f,
                "matrix is not unitary (max deviation {:.3})",
                *deviation_milli as f64 / 1000.0
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}×{cols})")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<LinalgError> = vec![
            LinalgError::DimensionMismatch {
                expected: 4,
                actual: 3,
            },
            LinalgError::NotAPermutation,
            LinalgError::NoConvergence { sweeps: 60 },
            LinalgError::NotUnitary {
                deviation_milli: 120,
            },
            LinalgError::NotSquare { rows: 2, cols: 3 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
