//! Complex Householder QR decomposition and Haar-random unitaries.
//!
//! Random unitaries drawn from the Haar measure are the standard stress input
//! for MZIM phase-programming algorithms (Clements et al., Optica 2016); the
//! canonical construction is `QR` of a complex Ginibre matrix with the `R`
//! diagonal phases folded into `Q`.

use crate::{CMat, C64};
use rand::Rng;

/// The result of a QR decomposition: `A = Q · R` with `Q` unitary and `R`
/// upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// The unitary factor (square, `m×m`).
    pub q: CMat,
    /// The upper-triangular factor (`m×n`).
    pub r: CMat,
}

/// Computes the QR decomposition of a complex matrix via Householder
/// reflections.
///
/// # Examples
///
/// ```
/// use flumen_linalg::{qr, C64, CMat};
/// let a = CMat::from_fn(3, 3, |r, c| C64::new((r + c) as f64, (r * c) as f64));
/// let f = qr(&a);
/// assert!(f.q.is_unitary(1e-10));
/// assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-10));
/// ```
pub fn qr(a: &CMat) -> Qr {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = CMat::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Householder vector v for column k, rows k..m.
        let mut v: Vec<C64> = (k..m).map(|i| r[(i, k)]).collect();
        let norm_x: f64 = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm_x < 1e-300 {
            continue;
        }
        // alpha = -e^{i arg(x0)} * |x|
        let x0 = v[0];
        let phase = if x0.abs() < 1e-300 {
            C64::ONE
        } else {
            x0 / x0.abs()
        };
        let alpha = -phase * norm_x;
        v[0] = x0 - alpha;
        let vnorm_sq: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sq < 1e-300 {
            continue;
        }

        // Apply H = I - 2 v v* / (v* v) to R (rows k..m) and accumulate into Q.
        for c in k..n {
            let mut dot = C64::ZERO;
            for (i, vi) in v.iter().enumerate() {
                dot += vi.conj() * r[(k + i, c)];
            }
            let s = dot * (2.0 / vnorm_sq);
            for (i, vi) in v.iter().enumerate() {
                let cur = r[(k + i, c)];
                r[(k + i, c)] = cur - *vi * s;
            }
        }
        // Q <- Q H  (H is Hermitian), so columns of Q are updated.
        for row in 0..m {
            let mut dot = C64::ZERO;
            for (i, vi) in v.iter().enumerate() {
                dot += q[(row, k + i)] * *vi;
            }
            let s = dot * (2.0 / vnorm_sq);
            for (i, vi) in v.iter().enumerate() {
                let cur = q[(row, k + i)];
                q[(row, k + i)] = cur - s * vi.conj();
            }
        }
    }

    // Zero the strict lower triangle of R against round-off.
    for rr in 1..m {
        for cc in 0..rr.min(n) {
            r[(rr, cc)] = C64::ZERO;
        }
    }
    Qr { q, r }
}

/// Draws an `n×n` unitary from the Haar measure.
///
/// The construction samples a complex Ginibre matrix (i.i.d. standard normal
/// real/imaginary parts), takes its QR decomposition, and normalizes the `R`
/// diagonal phases into `Q` so that the distribution is exactly Haar.
///
/// # Examples
///
/// ```
/// use flumen_linalg::random_unitary;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMat {
    let a = CMat::from_fn(n, n, |_, _| C64::new(gaussian(rng), gaussian(rng)));
    let f = qr(&a);
    // Fold R's diagonal phases into Q: Q' = Q · diag(r_ii / |r_ii|).
    let mut u = f.q;
    for j in 0..n {
        let d = f.r[(j, j)];
        let ph = if d.abs() < 1e-300 {
            C64::ONE
        } else {
            d / d.abs()
        };
        for i in 0..n {
            let cur = u[(i, j)];
            u[(i, j)] = cur * ph;
        }
    }
    u
}

/// Draws an `n×n` real orthogonal matrix (Haar over O(n)) — useful for
/// testing the real-SVD path.
pub fn random_orthogonal<R: Rng + ?Sized>(n: usize, rng: &mut R) -> crate::RMat {
    let a = CMat::from_fn(n, n, |_, _| C64::from_re(gaussian(rng)));
    let f = qr(&a);
    let mut u = f.q;
    for j in 0..n {
        let d = f.r[(j, j)];
        let s = if d.re < 0.0 { -1.0 } else { 1.0 };
        for i in 0..n {
            let cur = u[(i, j)];
            u[(i, j)] = cur * s;
        }
    }
    crate::RMat::from_cmat_re(&u)
}

/// Standard normal sample via Box-Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qr_reconstructs_square() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 5, 8] {
            let a = CMat::from_fn(n, n, |_, _| {
                C64::new(gaussian(&mut rng), gaussian(&mut rng))
            });
            let f = qr(&a);
            assert!(f.q.is_unitary(1e-9), "Q not unitary for n={n}");
            assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-9), "QR != A for n={n}");
        }
    }

    #[test]
    fn qr_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = CMat::from_fn(6, 3, |_, _| {
            C64::new(gaussian(&mut rng), gaussian(&mut rng))
        });
        let f = qr(&a);
        assert!(f.q.is_unitary(1e-9));
        assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = CMat::from_fn(5, 5, |_, _| {
            C64::new(gaussian(&mut rng), gaussian(&mut rng))
        });
        let f = qr(&a);
        for r in 1..5 {
            for c in 0..r {
                assert_eq!(f.r[(r, c)], C64::ZERO);
            }
        }
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [2usize, 4, 8, 16] {
            let u = random_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "n={n}");
        }
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = random_orthogonal(6, &mut rng);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.approx_eq(&crate::RMat::identity(6), 1e-9));
    }

    #[test]
    fn qr_of_identity() {
        let f = qr(&CMat::identity(4));
        assert!(f.q.matmul(&f.r).approx_eq(&CMat::identity(4), 1e-12));
    }

    #[test]
    fn qr_handles_rank_deficient() {
        // Two identical columns.
        let a = CMat::from_fn(3, 3, |r, c| {
            if c < 2 {
                C64::from_re(r as f64 + 1.0)
            } else {
                C64::from_re(1.0)
            }
        });
        let f = qr(&a);
        assert!(f.q.is_unitary(1e-9));
        assert!(f.q.matmul(&f.r).approx_eq(&a, 1e-9));
    }
}
