//! Block decomposition of matrices for N-input MZIM execution.
//!
//! An `N`-input Flumen MZIM implements one `N×N` matrix at a time, so an
//! arbitrary `n×m` matrix must be zero-padded to multiples of `N` and split
//! into `N×N` sub-blocks (paper Eqs. 2–3). The product is then evaluated as a
//! block matrix multiplication in which the fabric performs each
//! `N×N · N×p` product and the cores accumulate partial sums.

use crate::RMat;

/// An `n×m` matrix zero-padded and partitioned into `N×N` blocks.
///
/// # Examples
///
/// ```
/// use flumen_linalg::{BlockMatrix, RMat};
///
/// let m = RMat::from_fn(5, 6, |r, c| (r * 6 + c) as f64);
/// let blocks = BlockMatrix::decompose(&m, 4);
/// assert_eq!(blocks.block_rows(), 2); // ceil(5/4)
/// assert_eq!(blocks.block_cols(), 2); // ceil(6/4)
/// ```
#[derive(Debug, Clone)]
pub struct BlockMatrix {
    /// Original (unpadded) row count.
    orig_rows: usize,
    /// Original (unpadded) column count.
    orig_cols: usize,
    /// Block side length (the MZIM input count `N`).
    n: usize,
    /// Blocks in row-major block order; `blocks[i * block_cols + j]`.
    blocks: Vec<RMat>,
    block_rows: usize,
    block_cols: usize,
}

impl BlockMatrix {
    /// Zero-pads `m` along both dimensions to the nearest multiple of `n`
    /// and splits it into `n×n` sub-blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn decompose(m: &RMat, n: usize) -> Self {
        assert!(n > 0, "block size must be non-zero");
        let block_rows = m.rows().div_ceil(n);
        let block_cols = m.cols().div_ceil(n);
        let padded = m.zero_pad(block_rows * n, block_cols * n);
        let mut blocks = Vec::with_capacity(block_rows * block_cols);
        for bi in 0..block_rows {
            for bj in 0..block_cols {
                blocks.push(padded.sub_block(bi * n, bj * n, n, n));
            }
        }
        BlockMatrix {
            orig_rows: m.rows(),
            orig_cols: m.cols(),
            n,
            blocks,
            block_rows,
            block_cols,
        }
    }

    /// The block side length `N`.
    pub fn block_size(&self) -> usize {
        self.n
    }

    /// Number of block rows `⌈rows/N⌉`.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns `⌈cols/N⌉`.
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// The original (unpadded) shape.
    pub fn orig_shape(&self) -> (usize, usize) {
        (self.orig_rows, self.orig_cols)
    }

    /// The `(i, j)` block.
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn block(&self, i: usize, j: usize) -> &RMat {
        assert!(i < self.block_rows && j < self.block_cols);
        &self.blocks[i * self.block_cols + j]
    }

    /// Iterator over `((i, j), block)` pairs in row-major block order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &RMat)> {
        self.blocks
            .iter()
            .enumerate()
            .map(move |(k, b)| ((k / self.block_cols, k % self.block_cols), b))
    }

    /// Total number of `N×N` sub-block multiplications needed to multiply
    /// this matrix by a vector (`block_rows × block_cols`).
    pub fn mvm_block_ops(&self) -> usize {
        self.block_rows * self.block_cols
    }

    /// Multiplies the original matrix by vector `x` via block products plus
    /// partial-sum accumulation, exactly as the Flumen cores would. Returns
    /// the unpadded result.
    ///
    /// `block_mvm(i, j, chunk)` must return `block(i,j) · chunk`; the default
    /// exact evaluator is [`RMat::mul_vec`], but the photonic crate passes a
    /// closure that routes through the (noisy, quantized) MZIM model.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the original column count.
    pub fn mul_vec_via_blocks<F>(&self, x: &[f64], mut block_mvm: F) -> Vec<f64>
    where
        F: FnMut(usize, usize, &RMat, &[f64]) -> Vec<f64>,
    {
        assert_eq!(x.len(), self.orig_cols, "input vector length mismatch");
        let n = self.n;
        // Zero-pad the input vector.
        let mut xp = vec![0.0; self.block_cols * n];
        xp[..x.len()].copy_from_slice(x);

        let mut y = vec![0.0; self.block_rows * n];
        for i in 0..self.block_rows {
            for j in 0..self.block_cols {
                let chunk = &xp[j * n..(j + 1) * n];
                let partial = block_mvm(i, j, self.block(i, j), chunk);
                debug_assert_eq!(partial.len(), n);
                for (acc, p) in y[i * n..(i + 1) * n].iter_mut().zip(partial) {
                    *acc += p;
                }
            }
        }
        y.truncate(self.orig_rows);
        y
    }

    /// Exact block MVM using in-core arithmetic (reference path).
    pub fn mul_vec_exact(&self, x: &[f64]) -> Vec<f64> {
        self.mul_vec_via_blocks(x, |_, _, block, chunk| block.mul_vec(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn exact_block_mvm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(21);
        for (rows, cols, n) in [
            (5usize, 6usize, 4usize),
            (8, 8, 4),
            (3, 10, 4),
            (16, 4, 8),
            (1, 1, 4),
        ] {
            let m = RMat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let blocks = BlockMatrix::decompose(&m, n);
            let y_blocks = blocks.mul_vec_exact(&x);
            let y_dense = m.mul_vec(&x);
            assert_eq!(y_blocks.len(), y_dense.len());
            for (a, b) in y_blocks.iter().zip(y_dense.iter()) {
                assert!((a - b).abs() < 1e-10, "{rows}x{cols} n={n}");
            }
        }
    }

    #[test]
    fn block_counts() {
        let m = RMat::zeros(9, 13);
        let b = BlockMatrix::decompose(&m, 4);
        assert_eq!(b.block_rows(), 3);
        assert_eq!(b.block_cols(), 4);
        assert_eq!(b.mvm_block_ops(), 12);
        assert_eq!(b.orig_shape(), (9, 13));
        assert_eq!(b.block_size(), 4);
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let m = RMat::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let b = BlockMatrix::decompose(&m, 4);
        assert_eq!(b.block_rows(), 2);
        assert_eq!(b.block_cols(), 2);
        // Top-left block is the original top-left corner.
        assert_eq!(b.block(0, 0)[(0, 0)], 0.0);
        assert_eq!(b.block(1, 1)[(3, 3)], 63.0);
    }

    #[test]
    fn iter_visits_all_blocks() {
        let m = RMat::zeros(5, 5);
        let b = BlockMatrix::decompose(&m, 4);
        let coords: Vec<(usize, usize)> = b.iter().map(|(ij, _)| ij).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn padded_region_is_zero() {
        let m = RMat::from_fn(3, 3, |_, _| 1.0);
        let b = BlockMatrix::decompose(&m, 4);
        let blk = b.block(0, 0);
        assert_eq!(blk[(3, 3)], 0.0);
        assert_eq!(blk[(0, 3)], 0.0);
        assert_eq!(blk[(3, 0)], 0.0);
        assert_eq!(blk[(2, 2)], 1.0);
    }

    #[test]
    fn custom_block_evaluator_is_used() {
        let m = RMat::identity(4);
        let b = BlockMatrix::decompose(&m, 4);
        // An evaluator that doubles everything.
        let y = b.mul_vec_via_blocks(&[1.0, 2.0, 3.0, 4.0], |_, _, blk, x| {
            blk.mul_vec(x).into_iter().map(|v| 2.0 * v).collect()
        });
        assert_eq!(y, vec![2.0, 4.0, 6.0, 8.0]);
    }
}
