//! Runtime-dispatched SIMD dense matmul kernels.
//!
//! [`CMat::matmul_simd`] / [`CMat::matmul_simd_into`] are the wide-matrix
//! fast path: a register-tiled micro-kernel (4-row panels over a packed,
//! re/im-planar `B` layout) dispatched at runtime to AVX-512F, AVX2+FMA,
//! or a portable 4-lane-array fallback — `core::arch` only, no external
//! crates.
//!
//! # Numeric contract
//!
//! * **Pinned accumulation order.** Every output element is the
//!   ascending-`k` fused-multiply-add chain, starting from `0.0`:
//!
//!   ```text
//!   re ← fma(−a.im, b.im, re);  re ← fma(a.re, b.re, re)   // per k
//!   im ← fma( a.im, b.re, im);  im ← fma(a.re, b.im, im)
//!   ```
//!
//!   with **no** zero-`A` skip. SIMD lanes hold distinct output columns
//!   and are never reduced horizontally, so vector width cannot change
//!   any element's chain: the AVX-512, AVX2 and portable backends are
//!   bit-identical to one another because IEEE-754 `fma` is exactly
//!   rounded everywhere (`f64::mul_add` included). Result hashes are
//!   therefore ISA-independent by construction — the kernel-equivalence
//!   harness asserts exact equality across backends.
//! * **Relation to [`CMat::matmul`].** The seed-order kernels round each
//!   complex product before accumulating and skip exact-zero `A`
//!   elements; the fused chain here saves one rounding per term. For
//!   finite inputs the elementwise difference is bounded by
//!   `≈ 4·n·ε · Σₖ(|a.re·b.re| + |a.im·b.im|)` (resp. the `im` sum) — a
//!   couple of ULPs for well-conditioned data. For non-finite inputs, or
//!   when a zero-`A` row would have suppressed an `∞`/`NaN` in `B`, the
//!   two contracts may differ materially; `matmul_simd` is documented
//!   as IEEE-propagating, not zero-skipping.
//!
//! # Dispatch
//!
//! The backend is resolved once per process by [`simd_backend`]:
//! best-available by CPUID, overridable with `FLUMEN_SIMD` (`0` or
//! `portable` forces the fallback; `avx2` / `avx512` force a tier when
//! the CPU has it; anything else means "best available"). Because all
//! backends are bit-identical, the override changes speed, never
//! results.

use crate::CMat;
use std::sync::OnceLock;

/// Vector backend [`CMat::matmul_simd`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// 8-lane `f64` kernels (`avx512f`).
    Avx512,
    /// 4-lane `f64` kernels (`avx2` + `fma`).
    Avx2,
    /// Portable 4-lane-array kernel over `f64::mul_add` (bit-identical
    /// to the vector tiers; the determinism fallback, not a perf tier).
    Portable,
}

impl SimdBackend {
    /// Stable lower-case name (used in bench rows and trace events).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Avx512 => "avx512",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Portable => "portable",
        }
    }

    /// Whether this tier uses hardware vector FMA (the perf tiers the
    /// bench regression gate holds to the naive-kernel floor).
    pub fn is_hardware(self) -> bool {
        self != SimdBackend::Portable
    }
}

static BACKEND: OnceLock<SimdBackend> = OnceLock::new();

/// The process-wide SIMD backend (CPUID + `FLUMEN_SIMD` override,
/// resolved once and cached).
pub fn simd_backend() -> SimdBackend {
    *BACKEND.get_or_init(detect_backend)
}

fn detect_backend() -> SimdBackend {
    match std::env::var("FLUMEN_SIMD").ok().as_deref() {
        Some("0") | Some("portable") => return SimdBackend::Portable,
        Some("avx2") => {
            return if cpu_has_avx2() {
                SimdBackend::Avx2
            } else {
                SimdBackend::Portable
            }
        }
        Some("avx512") => {
            return if cpu_has_avx512() {
                SimdBackend::Avx512
            } else if cpu_has_avx2() {
                SimdBackend::Avx2
            } else {
                SimdBackend::Portable
            }
        }
        _ => {}
    }
    if cpu_has_avx512() {
        SimdBackend::Avx512
    } else if cpu_has_avx2() {
        SimdBackend::Avx2
    } else {
        SimdBackend::Portable
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx512() -> bool {
    false
}

/// Rows per register panel: every micro-kernel accumulates a 4-row strip
/// of output columns in registers across the whole `k` loop.
const MR: usize = 4;

/// Column padding of the packed-`B` planes — the widest lane count (one
/// AVX-512 register), so every backend can load full vectors with no
/// tail branch inside the `k` loop.
const PAD: usize = 8;

/// `B` repacked once per product into separate re/im planes (`kk` rows ×
/// `cc` columns each, `cc` padded to [`PAD`] with zeros). Planar layout
/// is what lets one broadcast `A` scalar drive pure-`f64` FMA lanes.
struct PackedB {
    cc: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

fn pack_b(b: &CMat) -> PackedB {
    let (kk, cols) = (b.rows(), b.cols());
    let cc = cols.div_ceil(PAD) * PAD;
    let mut re = vec![0.0f64; kk * cc];
    let mut im = vec![0.0f64; kk * cc];
    let data = b.as_slice();
    for k in 0..kk {
        let row = &data[k * cols..(k + 1) * cols];
        let (rre, rim) = (&mut re[k * cc..], &mut im[k * cc..]);
        for (c, z) in row.iter().enumerate() {
            rre[c] = z.re;
            rim[c] = z.im;
        }
    }
    PackedB { cc, re, im }
}

impl CMat {
    /// Matrix product `A·B` through the runtime-dispatched SIMD kernel.
    ///
    /// Same shape rules as [`CMat::matmul`]; see the [module docs]
    /// (`simd`) for the pinned fused accumulation order and how it may
    /// differ from the seed-order kernels in the last ULPs.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_simd(&self, other: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows(), other.cols());
        self.matmul_simd_into(other, &mut out);
        out
    }

    /// Allocation-light SIMD matrix product: `out ← A·B` (the packed-`B`
    /// planes are still built per call; `out` is not).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_simd_into(&self, other: &CMat, out: &mut CMat) {
        assert_eq!(
            self.cols(),
            other.rows(),
            "inner dimensions do not match: {}×{} · {}×{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        assert_eq!(
            (out.rows(), out.cols()),
            (self.rows(), other.cols()),
            "output must be {}×{}, got {}×{}",
            self.rows(),
            other.cols(),
            out.rows(),
            out.cols()
        );
        let bp = pack_b(other);
        let (rows, inner, cols) = (self.rows(), self.cols(), other.cols());
        let a = self.as_slice();
        match simd_backend() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: dispatch only selects these tiers after
            // `is_x86_feature_detected!` confirmed the features.
            SimdBackend::Avx512 => unsafe {
                avx512::matmul(a, rows, inner, &bp, out.as_mut_slice(), cols)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: same witness — `simd_backend()` only returns Avx2
            // after `is_x86_feature_detected!("avx2"/"fma")` passed.
            SimdBackend::Avx2 => unsafe {
                avx2::matmul(a, rows, inner, &bp, out.as_mut_slice(), cols)
            },
            _ => portable::matmul(a, rows, inner, &bp, out.as_mut_slice(), cols),
        }
    }
}

/// The portable 4-lane-array kernel — the reference shape the vector
/// tiers mirror. Each lane is one output column; the per-lane chain is
/// exactly the module-level pinned order.
mod portable {
    use super::{PackedB, MR};
    use crate::C64;

    const LANES: usize = 4;

    pub(super) fn matmul(
        a: &[C64],
        rows: usize,
        inner: usize,
        bp: &PackedB,
        out: &mut [C64],
        cols: usize,
    ) {
        let cc = bp.cc;
        let mut c0 = 0usize;
        while c0 < cols {
            let live = (cols - c0).min(LANES);
            for r0 in (0..rows).step_by(MR) {
                let m = (rows - r0).min(MR);
                let mut acc_re = [[0.0f64; LANES]; MR];
                let mut acc_im = [[0.0f64; LANES]; MR];
                for k in 0..inner {
                    let bre = &bp.re[k * cc + c0..][..LANES];
                    let bim = &bp.im[k * cc + c0..][..LANES];
                    for r in 0..m {
                        let av = a[(r0 + r) * inner + k];
                        let (are, aim) = (av.re, av.im);
                        for l in 0..LANES {
                            acc_re[r][l] = (-aim).mul_add(bim[l], acc_re[r][l]);
                            acc_re[r][l] = are.mul_add(bre[l], acc_re[r][l]);
                            acc_im[r][l] = aim.mul_add(bre[l], acc_im[r][l]);
                            acc_im[r][l] = are.mul_add(bim[l], acc_im[r][l]);
                        }
                    }
                }
                for r in 0..m {
                    let orow = &mut out[(r0 + r) * cols + c0..];
                    for l in 0..live {
                        orow[l] = C64::new(acc_re[r][l], acc_im[r][l]);
                    }
                }
            }
            c0 += LANES;
        }
    }
}

/// AVX2+FMA tier: 4-row × 4-column (one `__m256d` pair per row) panels.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{PackedB, MR};
    use crate::C64;
    use std::arch::x86_64::*;

    const LANES: usize = 4;

    // SAFETY: caller must hold the avx2+fma witness (the dispatch in
    // `matmul_simd_into` and the `cpu_has_avx2()`-guarded tests do);
    // `a` must hold `rows * inner` elements, `bp` a full
    // `inner × bp.cc` plane pair, `out` `rows * cols` elements.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul(
        a: &[C64],
        rows: usize,
        inner: usize,
        bp: &PackedB,
        out: &mut [C64],
        cols: usize,
    ) {
        let mut c0 = 0usize;
        while c0 < cols {
            let live = (cols - c0).min(LANES);
            let mut r0 = 0usize;
            while r0 + MR <= rows {
                panel4(a, r0, inner, bp, c0, out, cols, live);
                r0 += MR;
            }
            if r0 < rows {
                panel_tail(a, r0, rows - r0, inner, bp, c0, out, cols, live);
            }
            c0 += LANES;
        }
    }

    /// Hot path: 4 full rows, 8 named accumulator registers.
    // SAFETY: requires avx2+fma (inherited from `matmul`'s witness),
    // `(r0 + MR) * inner <= a.len()` for the row-pointer reads, and
    // `c0 + LANES <= bp.cc` within fully packed B planes for the
    // unaligned vector loads; the preamble asserts check exactly these.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel4(
        a: &[C64],
        r0: usize,
        inner: usize,
        bp: &PackedB,
        c0: usize,
        out: &mut [C64],
        cols: usize,
        live: usize,
    ) {
        let cc = bp.cc;
        debug_assert!((r0 + MR) * inner <= a.len());
        debug_assert!(c0 + LANES <= cc && inner * cc <= bp.re.len() && bp.im.len() == bp.re.len());
        let (pre, pim) = (bp.re.as_ptr(), bp.im.as_ptr());
        let ap = a.as_ptr();
        let (a0, a1, a2, a3) = (
            ap.add(r0 * inner),
            ap.add((r0 + 1) * inner),
            ap.add((r0 + 2) * inner),
            ap.add((r0 + 3) * inner),
        );
        let mut re0 = _mm256_setzero_pd();
        let mut re1 = _mm256_setzero_pd();
        let mut re2 = _mm256_setzero_pd();
        let mut re3 = _mm256_setzero_pd();
        let mut im0 = _mm256_setzero_pd();
        let mut im1 = _mm256_setzero_pd();
        let mut im2 = _mm256_setzero_pd();
        let mut im3 = _mm256_setzero_pd();
        for k in 0..inner {
            let bre = _mm256_loadu_pd(pre.add(k * cc + c0));
            let bim = _mm256_loadu_pd(pim.add(k * cc + c0));
            let (v0, v1, v2, v3) = (*a0.add(k), *a1.add(k), *a2.add(k), *a3.add(k));
            let t = _mm256_set1_pd(v0.im);
            re0 = _mm256_fnmadd_pd(t, bim, re0);
            im0 = _mm256_fmadd_pd(t, bre, im0);
            let t = _mm256_set1_pd(v0.re);
            re0 = _mm256_fmadd_pd(t, bre, re0);
            im0 = _mm256_fmadd_pd(t, bim, im0);
            let t = _mm256_set1_pd(v1.im);
            re1 = _mm256_fnmadd_pd(t, bim, re1);
            im1 = _mm256_fmadd_pd(t, bre, im1);
            let t = _mm256_set1_pd(v1.re);
            re1 = _mm256_fmadd_pd(t, bre, re1);
            im1 = _mm256_fmadd_pd(t, bim, im1);
            let t = _mm256_set1_pd(v2.im);
            re2 = _mm256_fnmadd_pd(t, bim, re2);
            im2 = _mm256_fmadd_pd(t, bre, im2);
            let t = _mm256_set1_pd(v2.re);
            re2 = _mm256_fmadd_pd(t, bre, re2);
            im2 = _mm256_fmadd_pd(t, bim, im2);
            let t = _mm256_set1_pd(v3.im);
            re3 = _mm256_fnmadd_pd(t, bim, re3);
            im3 = _mm256_fmadd_pd(t, bre, im3);
            let t = _mm256_set1_pd(v3.re);
            re3 = _mm256_fmadd_pd(t, bre, re3);
            im3 = _mm256_fmadd_pd(t, bim, im3);
        }
        store(re0, im0, &mut out[r0 * cols + c0..], live);
        store(re1, im1, &mut out[(r0 + 1) * cols + c0..], live);
        store(re2, im2, &mut out[(r0 + 2) * cols + c0..], live);
        store(re3, im3, &mut out[(r0 + 3) * cols + c0..], live);
    }

    /// Remaining 1–3 rows: same chains through register arrays.
    // SAFETY: requires avx2+fma (inherited from `matmul`'s witness) and
    // `c0 + LANES <= bp.cc` within fully packed B planes for the
    // unaligned vector loads (A is read with checked slice indexing).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel_tail(
        a: &[C64],
        r0: usize,
        m: usize,
        inner: usize,
        bp: &PackedB,
        c0: usize,
        out: &mut [C64],
        cols: usize,
        live: usize,
    ) {
        let cc = bp.cc;
        debug_assert!(c0 + LANES <= cc && inner * cc <= bp.re.len() && bp.im.len() == bp.re.len());
        let (pre, pim) = (bp.re.as_ptr(), bp.im.as_ptr());
        let mut re = [_mm256_setzero_pd(); MR];
        let mut im = [_mm256_setzero_pd(); MR];
        for k in 0..inner {
            let bre = _mm256_loadu_pd(pre.add(k * cc + c0));
            let bim = _mm256_loadu_pd(pim.add(k * cc + c0));
            for r in 0..m {
                let av = a[(r0 + r) * inner + k];
                let t = _mm256_set1_pd(av.im);
                re[r] = _mm256_fnmadd_pd(t, bim, re[r]);
                im[r] = _mm256_fmadd_pd(t, bre, im[r]);
                let t = _mm256_set1_pd(av.re);
                re[r] = _mm256_fmadd_pd(t, bre, re[r]);
                im[r] = _mm256_fmadd_pd(t, bim, im[r]);
            }
        }
        for r in 0..m {
            store(re[r], im[r], &mut out[(r0 + r) * cols + c0..], live);
        }
    }

    // SAFETY: requires avx2+fma (inherited from `matmul`'s witness);
    // the vector stores land in the local `LANES`-sized spill arrays,
    // and `orow` is written with checked slice indexing only.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn store(re: __m256d, im: __m256d, orow: &mut [C64], live: usize) {
        let mut bre = [0.0f64; LANES];
        let mut bim = [0.0f64; LANES];
        _mm256_storeu_pd(bre.as_mut_ptr(), re);
        _mm256_storeu_pd(bim.as_mut_ptr(), im);
        for l in 0..live {
            orow[l] = C64::new(bre[l], bim[l]);
        }
    }
}

/// AVX-512F tier: 4-row × 8-column (one `__m512d` pair per row) panels.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{PackedB, MR};
    use crate::C64;
    use std::arch::x86_64::*;

    const LANES: usize = 8;

    // SAFETY: caller must hold the avx512f witness (the dispatch in
    // `matmul_simd_into` and the `cpu_has_avx512()`-guarded tests do);
    // `a` must hold `rows * inner` elements, `bp` a full
    // `inner × bp.cc` plane pair, `out` `rows * cols` elements.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn matmul(
        a: &[C64],
        rows: usize,
        inner: usize,
        bp: &PackedB,
        out: &mut [C64],
        cols: usize,
    ) {
        let mut c0 = 0usize;
        while c0 < cols {
            let live = (cols - c0).min(LANES);
            let mut r0 = 0usize;
            while r0 + MR <= rows {
                panel4(a, r0, inner, bp, c0, out, cols, live);
                r0 += MR;
            }
            if r0 < rows {
                panel_tail(a, r0, rows - r0, inner, bp, c0, out, cols, live);
            }
            c0 += LANES;
        }
    }

    // SAFETY: requires avx512f (inherited from `matmul`'s witness),
    // `(r0 + MR) * inner <= a.len()` for the row-pointer reads, and
    // `c0 + LANES <= bp.cc` within fully packed B planes for the
    // unaligned vector loads; the preamble asserts check exactly these.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel4(
        a: &[C64],
        r0: usize,
        inner: usize,
        bp: &PackedB,
        c0: usize,
        out: &mut [C64],
        cols: usize,
        live: usize,
    ) {
        let cc = bp.cc;
        debug_assert!((r0 + MR) * inner <= a.len());
        debug_assert!(c0 + LANES <= cc && inner * cc <= bp.re.len() && bp.im.len() == bp.re.len());
        let (pre, pim) = (bp.re.as_ptr(), bp.im.as_ptr());
        let ap = a.as_ptr();
        let (a0, a1, a2, a3) = (
            ap.add(r0 * inner),
            ap.add((r0 + 1) * inner),
            ap.add((r0 + 2) * inner),
            ap.add((r0 + 3) * inner),
        );
        let mut re0 = _mm512_setzero_pd();
        let mut re1 = _mm512_setzero_pd();
        let mut re2 = _mm512_setzero_pd();
        let mut re3 = _mm512_setzero_pd();
        let mut im0 = _mm512_setzero_pd();
        let mut im1 = _mm512_setzero_pd();
        let mut im2 = _mm512_setzero_pd();
        let mut im3 = _mm512_setzero_pd();
        for k in 0..inner {
            let bre = _mm512_loadu_pd(pre.add(k * cc + c0));
            let bim = _mm512_loadu_pd(pim.add(k * cc + c0));
            let (v0, v1, v2, v3) = (*a0.add(k), *a1.add(k), *a2.add(k), *a3.add(k));
            let t = _mm512_set1_pd(v0.im);
            re0 = _mm512_fnmadd_pd(t, bim, re0);
            im0 = _mm512_fmadd_pd(t, bre, im0);
            let t = _mm512_set1_pd(v0.re);
            re0 = _mm512_fmadd_pd(t, bre, re0);
            im0 = _mm512_fmadd_pd(t, bim, im0);
            let t = _mm512_set1_pd(v1.im);
            re1 = _mm512_fnmadd_pd(t, bim, re1);
            im1 = _mm512_fmadd_pd(t, bre, im1);
            let t = _mm512_set1_pd(v1.re);
            re1 = _mm512_fmadd_pd(t, bre, re1);
            im1 = _mm512_fmadd_pd(t, bim, im1);
            let t = _mm512_set1_pd(v2.im);
            re2 = _mm512_fnmadd_pd(t, bim, re2);
            im2 = _mm512_fmadd_pd(t, bre, im2);
            let t = _mm512_set1_pd(v2.re);
            re2 = _mm512_fmadd_pd(t, bre, re2);
            im2 = _mm512_fmadd_pd(t, bim, im2);
            let t = _mm512_set1_pd(v3.im);
            re3 = _mm512_fnmadd_pd(t, bim, re3);
            im3 = _mm512_fmadd_pd(t, bre, im3);
            let t = _mm512_set1_pd(v3.re);
            re3 = _mm512_fmadd_pd(t, bre, re3);
            im3 = _mm512_fmadd_pd(t, bim, im3);
        }
        store(re0, im0, &mut out[r0 * cols + c0..], live);
        store(re1, im1, &mut out[(r0 + 1) * cols + c0..], live);
        store(re2, im2, &mut out[(r0 + 2) * cols + c0..], live);
        store(re3, im3, &mut out[(r0 + 3) * cols + c0..], live);
    }

    // SAFETY: requires avx512f (inherited from `matmul`'s witness) and
    // `c0 + LANES <= bp.cc` within fully packed B planes for the
    // unaligned vector loads (A is read with checked slice indexing).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn panel_tail(
        a: &[C64],
        r0: usize,
        m: usize,
        inner: usize,
        bp: &PackedB,
        c0: usize,
        out: &mut [C64],
        cols: usize,
        live: usize,
    ) {
        let cc = bp.cc;
        debug_assert!(c0 + LANES <= cc && inner * cc <= bp.re.len() && bp.im.len() == bp.re.len());
        let (pre, pim) = (bp.re.as_ptr(), bp.im.as_ptr());
        let mut re = [_mm512_setzero_pd(); MR];
        let mut im = [_mm512_setzero_pd(); MR];
        for k in 0..inner {
            let bre = _mm512_loadu_pd(pre.add(k * cc + c0));
            let bim = _mm512_loadu_pd(pim.add(k * cc + c0));
            for r in 0..m {
                let av = a[(r0 + r) * inner + k];
                let t = _mm512_set1_pd(av.im);
                re[r] = _mm512_fnmadd_pd(t, bim, re[r]);
                im[r] = _mm512_fmadd_pd(t, bre, im[r]);
                let t = _mm512_set1_pd(av.re);
                re[r] = _mm512_fmadd_pd(t, bre, re[r]);
                im[r] = _mm512_fmadd_pd(t, bim, im[r]);
            }
        }
        for r in 0..m {
            store(re[r], im[r], &mut out[(r0 + r) * cols + c0..], live);
        }
    }

    // SAFETY: requires avx512f (inherited from `matmul`'s witness);
    // the vector stores land in the local `LANES`-sized spill arrays,
    // and `orow` is written with checked slice indexing only.
    #[target_feature(enable = "avx512f")]
    unsafe fn store(re: __m512d, im: __m512d, orow: &mut [C64], live: usize) {
        let mut bre = [0.0f64; LANES];
        let mut bim = [0.0f64; LANES];
        _mm512_storeu_pd(bre.as_mut_ptr(), re);
        _mm512_storeu_pd(bim.as_mut_ptr(), im);
        for l in 0..live {
            orow[l] = C64::new(bre[l], bim[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    /// Scalar restatement of the pinned chain, independent of every
    /// kernel's loop structure.
    fn pinned_reference(a: &CMat, b: &CMat) -> CMat {
        CMat::from_fn(a.rows(), b.cols(), |r, c| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for k in 0..a.cols() {
                let av = a[(r, k)];
                let bv = b[(k, c)];
                re = (-av.im).mul_add(bv.im, re);
                re = av.re.mul_add(bv.re, re);
                im = av.im.mul_add(bv.re, im);
                im = av.re.mul_add(bv.im, im);
            }
            C64::new(re, im)
        })
    }

    fn cases() -> Vec<(CMat, CMat)> {
        let mk = |m: usize, k: usize, n: usize, s: f64| {
            (
                CMat::from_fn(m, k, |r, c| {
                    C64::new(((r * k + c) as f64).sin() * s, ((r + 3 * c) as f64).cos())
                }),
                CMat::from_fn(k, n, |r, c| {
                    C64::new(((r + c * 7) as f64).cos(), ((r * n + c) as f64).sin() * s)
                }),
            )
        };
        vec![
            mk(1, 1, 1, 1.0),
            mk(3, 5, 2, 0.7),
            mk(4, 4, 4, 1.3),
            mk(7, 9, 11, 0.9),
            mk(13, 16, 8, 1.1),
            mk(16, 16, 16, 1.0),
            mk(33, 17, 29, 0.8),
        ]
    }

    #[test]
    fn portable_matches_pinned_reference_bitwise() {
        for (a, b) in cases() {
            let mut out = CMat::zeros(a.rows(), b.cols());
            let bp = pack_b(&b);
            portable::matmul(
                a.as_slice(),
                a.rows(),
                a.cols(),
                &bp,
                out.as_mut_slice(),
                b.cols(),
            );
            assert_eq!(out, pinned_reference(&a, &b));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn hardware_tiers_match_pinned_reference_bitwise() {
        for (a, b) in cases() {
            let reference = pinned_reference(&a, &b);
            if cpu_has_avx2() {
                let mut out = CMat::zeros(a.rows(), b.cols());
                let bp = pack_b(&b);
                // SAFETY: guarded by `cpu_has_avx2`.
                unsafe {
                    avx2::matmul(
                        a.as_slice(),
                        a.rows(),
                        a.cols(),
                        &bp,
                        out.as_mut_slice(),
                        b.cols(),
                    );
                }
                assert_eq!(out, reference, "avx2 diverged from pinned order");
            }
            if cpu_has_avx512() {
                let mut out = CMat::zeros(a.rows(), b.cols());
                let bp = pack_b(&b);
                // SAFETY: guarded by `cpu_has_avx512`.
                unsafe {
                    avx512::matmul(
                        a.as_slice(),
                        a.rows(),
                        a.cols(),
                        &bp,
                        out.as_mut_slice(),
                        b.cols(),
                    );
                }
                assert_eq!(out, reference, "avx512 diverged from pinned order");
            }
        }
    }

    #[test]
    fn dispatched_entry_point_matches_reference() {
        for (a, b) in cases() {
            assert_eq!(a.matmul_simd(&b), pinned_reference(&a, &b));
        }
    }

    #[test]
    fn close_to_seed_order_on_finite_inputs() {
        for (a, b) in cases() {
            let seed = a.matmul(&b);
            let fused = a.matmul_simd(&b);
            let n = a.cols() as f64;
            for r in 0..seed.rows() {
                for c in 0..seed.cols() {
                    // Elementwise bound: 4·n·ε against the absolute-
                    // product sums of the two chains.
                    let (mut sre, mut sim) = (0.0f64, 0.0f64);
                    for k in 0..a.cols() {
                        let (av, bv) = (a[(r, k)], b[(k, c)]);
                        sre += (av.re * bv.re).abs() + (av.im * bv.im).abs();
                        sim += (av.re * bv.im).abs() + (av.im * bv.re).abs();
                    }
                    let tol = 4.0 * n * f64::EPSILON;
                    let d = seed[(r, c)] - fused[(r, c)];
                    assert!(d.re.abs() <= tol * sre.max(f64::MIN_POSITIVE));
                    assert!(d.im.abs() <= tol * sim.max(f64::MIN_POSITIVE));
                }
            }
        }
    }

    #[test]
    fn backend_name_is_stable() {
        assert_eq!(SimdBackend::Avx512.name(), "avx512");
        assert_eq!(SimdBackend::Avx2.name(), "avx2");
        assert_eq!(SimdBackend::Portable.name(), "portable");
        assert!(SimdBackend::Avx2.is_hardware());
        assert!(!SimdBackend::Portable.is_hardware());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn simd_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul_simd(&b);
    }
}
