//! Dense complex matrices (row-major).
//!
//! [`CMat`] is the workhorse type for E-field transfer matrices: MZI 2×2
//! blocks embedded into N×N meshes, unitary communication maps, and the
//! decompositions that program them.

use crate::{LinalgError, Result, C64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use flumen_linalg::{C64, CMat};
///
/// let id = CMat::identity(3);
/// let x = CMat::from_fn(3, 3, |r, c| C64::from_re((r * 3 + c) as f64));
/// assert_eq!(&id * &x, x);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows*cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<C64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(CMat { rows, cols, data })
    }

    /// Builds an `n×n` permutation matrix `P` with `P[perm[i], i] = 1`,
    /// i.e. input `i` is routed to output `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotAPermutation`] if `perm` is not a
    /// permutation of `0..n`.
    pub fn permutation(perm: &[usize]) -> Result<Self> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return Err(LinalgError::NotAPermutation);
            }
            seen[p] = true;
        }
        let mut m = CMat::zeros(n, n);
        for (i, &p) in perm.iter().enumerate() {
            m[(p, i)] = C64::ONE;
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major storage (kernel-internal).
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// The conjugate transpose (adjoint) `A*`.
    pub fn adjoint(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// The (non-conjugating) transpose.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[C64]) -> Vec<C64> {
        let mut y = vec![C64::ZERO; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Allocation-free matrix-vector product: `y ← A·x`.
    ///
    /// Each output element is accumulated into a local scalar (ascending
    /// column index) and stored once, so the summation order is the plain
    /// left-to-right fold `((0 + a₀x₀) + a₁x₁) + …` that the kernel
    /// proptests pin down bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[C64], y: &mut [C64]) {
        assert_eq!(
            x.len(),
            self.cols,
            "vector length {} does not match matrix columns {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "output length {} does not match matrix rows {}",
            y.len(),
            self.rows
        );
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            *out = acc;
        }
    }

    /// Matrix product `A·B`.
    ///
    /// Delegates to the allocation-reusing scratch-staged kernel of
    /// [`CMat::matmul_into`]: wide output rows accumulate in a stack
    /// scratch chunk across the whole `k` loop, so the hot loop never
    /// stores to `out` and cannot hit store-forward 4K aliasing against
    /// the `B` stream (which made the old store-per-`k` form up to ~2×
    /// slower whenever the allocator placed `out` and `B` ≡ mod 4 KiB).
    /// Each output element is the ascending-`k` fold
    /// `((0 + a₀b₀) + a₁b₁) + …` with zero `A`-elements skipped — the
    /// exact term sequence of the seed's triple loop, so results are
    /// bit-identical to it (proptested in `tests/proptest_kernels.rs`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Allocation-free matrix product: `out ← A·B`.
    ///
    /// Streams `B` rows in ascending `k`, accumulating output-row chunks
    /// in a stack scratch buffer and storing each finished chunk to `out`
    /// exactly once, with the same zero-`A` skip as [`CMat::matmul`] —
    /// the two kernels are bit-identical (proptested).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or if `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_into(&self, other: &CMat, out: &mut CMat) {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions do not match: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "output must be {}×{}, got {}×{}",
            self.rows,
            other.cols,
            out.rows,
            out.cols
        );
        let cols = other.cols;
        let inner = self.cols;
        // Accumulate each output row in a stack scratch chunk and copy it
        // to `out` once per chunk. The k-loop's stores land in the scratch
        // buffer, never in `out`, so the kernel's speed cannot depend on
        // where the caller's `out` allocation sits relative to `B`: the
        // earlier row-streaming form stored into `o_row` on every `k`, and
        // whenever the `out` and `B` allocations landed ≡ mod 4 KiB those
        // stores false-conflicted with the next rows' `B` loads
        // (store-forward 4K aliasing) — a layout-dependent ~2× slowdown
        // that `bench_perf` caught at n=128. The c-inner axpy over the
        // chunk vectorizes like the seed's triple loop (a 4-column
        // register tile measured ~5% slower across sizes).
        //
        // Narrow matrices skip the staging: their row stride spreads the
        // stores across many distinct page offsets, so the aliasing
        // hazard is diluted away, while the fill + copy-back overhead is
        // a measurable fraction of the whole product. The hazard needs
        // few distinct `stride mod 4 KiB` residues, i.e. wide rows.
        if cols < 64 {
            for (a_row, o_row) in self
                .data
                .chunks_exact(inner)
                .zip(out.data.chunks_exact_mut(cols))
            {
                o_row.fill(C64::ZERO);
                for (b_row, &a) in other.data.chunks_exact(cols).zip(a_row.iter()) {
                    if a == C64::ZERO {
                        continue;
                    }
                    for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                        *o += a * b;
                    }
                }
            }
            return;
        }
        const CHUNK: usize = 128;
        // One scratch buffer per call, cleared `w` elements at a time, so
        // matrices narrower than the chunk don't pay for its full width.
        let mut scratch = [C64::ZERO; CHUNK];
        for (a_row, o_row) in self
            .data
            .chunks_exact(inner)
            .zip(out.data.chunks_exact_mut(cols))
        {
            let mut c0 = 0usize;
            while c0 < cols {
                let w = CHUNK.min(cols - c0);
                let chunk = &mut scratch[..w];
                chunk.fill(C64::ZERO);
                for (b_row, &a) in other.data.chunks_exact(cols).zip(a_row.iter()) {
                    if a == C64::ZERO {
                        continue;
                    }
                    let b_chunk = &b_row[c0..c0 + w];
                    for (o, &b) in chunk.iter_mut().zip(b_chunk.iter()) {
                        *o += a * b;
                    }
                }
                o_row[c0..c0 + w].copy_from_slice(chunk);
                c0 += w;
            }
        }
    }

    /// Scales every element by the complex scalar `k`.
    pub fn scale(&self, k: C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Frobenius norm `sqrt(Σ|a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute element `max |a_ij|`.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Element-wise approximate equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Whether `A* A ≈ I` within tolerance `tol` (columns orthonormal).
    ///
    /// For square matrices this is the unitarity test.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.adjoint()
            .matmul(self)
            .approx_eq(&CMat::identity(self.rows), tol)
    }

    /// Left-multiplies `self` in place by a 2×2 block acting on rows
    /// `(m, m+1)`: `self ← T_m(t) · self`. Much cheaper than building the
    /// embedded matrix and calling [`CMat::matmul`].
    pub fn apply_2x2_left(&mut self, m: usize, t: [[C64; 2]; 2]) {
        assert!(m + 1 < self.rows);
        for c in 0..self.cols {
            let a = self[(m, c)];
            let b = self[(m + 1, c)];
            self[(m, c)] = t[0][0] * a + t[0][1] * b;
            self[(m + 1, c)] = t[1][0] * a + t[1][1] * b;
        }
    }

    /// Right-multiplies `self` in place by a 2×2 block acting on columns
    /// `(m, m+1)`: `self ← self · T_m(t)`.
    pub fn apply_2x2_right(&mut self, m: usize, t: [[C64; 2]; 2]) {
        assert!(m + 1 < self.cols);
        for r in 0..self.rows {
            let a = self[(r, m)];
            let b = self[(r, m + 1)];
            self[(r, m)] = a * t[0][0] + b * t[1][0];
            self[(r, m + 1)] = a * t[0][1] + b * t[1][1];
        }
    }

    /// Returns the vector of per-element optical powers `|a_i|²` for a
    /// column vector stored as a slice.
    pub fn powers(v: &[C64]) -> Vec<f64> {
        v.iter().map(|z| z.norm_sqr()).collect()
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>22}", format!("{:.4}", self[(r, c)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_unitary() {
        assert!(CMat::identity(5).is_unitary(1e-12));
    }

    #[test]
    fn zeros_not_unitary() {
        assert!(!CMat::zeros(3, 3).is_unitary(1e-12));
    }

    #[test]
    fn from_rows_dimension_check() {
        assert!(CMat::from_rows(2, 2, vec![C64::ONE; 3]).is_err());
        assert!(CMat::from_rows(2, 2, vec![C64::ONE; 4]).is_ok());
    }

    #[test]
    fn permutation_routes_inputs() {
        let p = CMat::permutation(&[2, 0, 1]).unwrap();
        let x = vec![C64::from_re(1.0), C64::from_re(2.0), C64::from_re(3.0)];
        let y = p.mul_vec(&x);
        // input 0 -> output 2, input 1 -> output 0, input 2 -> output 1
        assert_eq!(y[2], C64::from_re(1.0));
        assert_eq!(y[0], C64::from_re(2.0));
        assert_eq!(y[1], C64::from_re(3.0));
        assert!(p.is_unitary(1e-12));
    }

    #[test]
    fn permutation_rejects_invalid() {
        assert!(CMat::permutation(&[0, 0, 1]).is_err());
        assert!(CMat::permutation(&[0, 3, 1]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = CMat::from_fn(3, 4, |r, c| C64::new(r as f64, c as f64));
        assert_eq!(CMat::identity(3).matmul(&a), a);
        assert_eq!(a.matmul(&CMat::identity(4)), a);
    }

    #[test]
    fn matmul_known_product() {
        // [[1, i], [0, 1]] * [[1, 0], [i, 1]] = [[1 + i*i, i], [i, 1]] = [[0, i], [i, 1]]
        let a = CMat::from_rows(2, 2, vec![C64::ONE, C64::I, C64::ZERO, C64::ONE]).unwrap();
        let b = CMat::from_rows(2, 2, vec![C64::ONE, C64::ZERO, C64::I, C64::ONE]).unwrap();
        let p = a.matmul(&b);
        assert!(p[(0, 0)].approx_eq(C64::ZERO, 1e-14));
        assert!(p[(0, 1)].approx_eq(C64::I, 1e-14));
        assert!(p[(1, 0)].approx_eq(C64::I, 1e-14));
        assert!(p[(1, 1)].approx_eq(C64::ONE, 1e-14));
    }

    #[test]
    fn adjoint_involution() {
        let a = CMat::from_fn(3, 2, |r, c| C64::new(r as f64, c as f64 + 1.0));
        assert_eq!(a.adjoint().adjoint(), a);
        assert_eq!(a.adjoint().rows(), 2);
    }

    #[test]
    fn transpose_does_not_conjugate() {
        let a = CMat::from_fn(2, 2, |_, _| C64::I);
        assert_eq!(a.transpose()[(0, 0)], C64::I);
        assert_eq!(a.adjoint()[(0, 0)], -C64::I);
    }

    #[test]
    fn mul_vec_linear() {
        let a = CMat::from_fn(2, 2, |r, c| C64::from_re((r + c) as f64));
        let x = vec![C64::from_re(1.0), C64::from_re(2.0)];
        let y = a.mul_vec(&x);
        assert_eq!(y[0], C64::from_re(2.0)); // 0*1 + 1*2
        assert_eq!(y[1], C64::from_re(5.0)); // 1*1 + 2*2
    }

    /// Embeds the 2×2 block `t` into an `n×n` identity on channels
    /// `(m, m+1)` — reference for the in-place `apply_2x2_*` tests.
    fn embed_2x2(n: usize, m: usize, t: [[C64; 2]; 2]) -> CMat {
        CMat::from_fn(n, n, |r, c| {
            if (m..=m + 1).contains(&r) && (m..=m + 1).contains(&c) {
                t[r - m][c - m]
            } else if r == c {
                C64::ONE
            } else {
                C64::ZERO
            }
        })
    }

    #[test]
    fn embed_matches_apply_left() {
        let t = [
            [C64::new(0.6, 0.0), C64::new(0.0, 0.8)],
            [C64::new(0.0, 0.8), C64::new(0.6, 0.0)],
        ];
        let a = CMat::from_fn(4, 4, |r, c| C64::new(r as f64, c as f64));
        let full = embed_2x2(4, 1, t).matmul(&a);
        let mut fast = a.clone();
        fast.apply_2x2_left(1, t);
        assert!(full.approx_eq(&fast, 1e-12));
    }

    #[test]
    fn embed_matches_apply_right() {
        let t = [
            [C64::new(0.6, 0.0), C64::new(0.0, 0.8)],
            [C64::new(0.0, 0.8), C64::new(0.6, 0.0)],
        ];
        let a = CMat::from_fn(4, 4, |r, c| C64::new(c as f64, r as f64));
        let full = a.matmul(&embed_2x2(4, 2, t));
        let mut fast = a.clone();
        fast.apply_2x2_right(2, t);
        assert!(full.approx_eq(&fast, 1e-12));
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = CMat::from_fn(3, 5, |r, c| C64::new(r as f64 - 1.0, c as f64));
        let b = CMat::from_fn(5, 2, |r, c| C64::new(c as f64, r as f64 - 2.0));
        let mut out = CMat::zeros(3, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = CMat::from_fn(4, 3, |r, c| C64::new(r as f64, c as f64 + 0.5));
        let x = vec![C64::from_re(1.0), C64::I, C64::new(-2.0, 3.0)];
        let mut y = vec![C64::ZERO; 4];
        a.mul_vec_into(&x, &mut y);
        assert_eq!(y, a.mul_vec(&x));
    }

    #[test]
    #[should_panic(expected = "output must be")]
    fn matmul_into_checks_output_shape() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(3, 4);
        let mut out = CMat::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn frobenius_norm_identity() {
        assert!((CMat::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMat::from_fn(2, 3, |r, c| C64::new(r as f64, c as f64));
        let b = CMat::from_fn(2, 3, |r, c| C64::new(c as f64, r as f64));
        let s = &(&a + &b) - &b;
        assert!(s.approx_eq(&a, 1e-14));
    }

    #[test]
    fn powers_returns_squared_magnitudes() {
        let v = vec![C64::new(3.0, 4.0), C64::I];
        assert_eq!(CMat::powers(&v), vec![25.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_by_i_rotates_phase() {
        let a = CMat::identity(2).scale(C64::I);
        assert_eq!(a[(0, 0)], C64::I);
        assert!(a.is_unitary(1e-12));
    }
}
