//! # flumen-linalg
//!
//! Complex and real dense linear algebra for the Flumen photonic-interconnect
//! simulator — written from scratch so the workspace has no external
//! linear-algebra dependencies.
//!
//! The crate provides exactly what the photonic stack needs:
//!
//! * [`C64`] — complex numbers for E-field arithmetic.
//! * [`CMat`] / [`RMat`] — dense matrices (transfer matrices / weights).
//! * [`qr`] and [`random_unitary`] — Householder QR and Haar-random
//!   unitaries for testing phase-programming algorithms.
//! * [`svd`], [`spectral_norm`], [`spectral_scale`] — one-sided Jacobi SVD,
//!   used to lower arbitrary weight blocks onto SVD-MZIM circuits
//!   (paper §3.3.1).
//! * [`BlockMatrix`] — zero-padding and `N×N` block decomposition for block
//!   matrix multiplication on an `N`-input fabric (paper Eqs. 2–3).
//!
//! # Example: lowering a weight matrix for an 8-input MZIM
//!
//! ```
//! use flumen_linalg::{spectral_scale, BlockMatrix, RMat};
//!
//! # fn main() -> Result<(), flumen_linalg::LinalgError> {
//! let weights = RMat::from_fn(10, 12, |r, c| ((r + c) % 5) as f64 / 5.0);
//! let (scaled, norm) = spectral_scale(&weights)?;   // σ_max(scaled) == 1
//! let blocks = BlockMatrix::decompose(&scaled, 8);  // 2×2 grid of 8×8 blocks
//! let x = vec![0.25; 12];
//! let y = blocks.mul_vec_exact(&x);                 // photonic-style block MVM
//! let y_true = weights.mul_vec(&x);
//! for (a, b) in y.iter().zip(y_true.iter()) {
//!     assert!((a * norm - b).abs() < 1e-9);
//! }
//! # Ok(())
//! # }
//! ```

// Indexed loops mirror the paper's matrix notation; iterator-chain
// rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod cmat;
mod complex;
mod error;
mod hash;
mod qr;
mod rmat;
pub mod simd;
mod svd;

pub use block::BlockMatrix;
pub use cmat::CMat;
pub use complex::C64;
pub use error::{LinalgError, Result};
pub use hash::sha256_hex;
pub use qr::{qr, random_orthogonal, random_unitary, Qr};
pub use rmat::RMat;
pub use simd::{simd_backend, SimdBackend};
pub use svd::{spectral_norm, spectral_scale, svd, Svd};
