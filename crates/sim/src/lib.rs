//! # flumen-sim — the unified discrete-event simulation kernel
//!
//! Every cycle-accurate loop in the workspace (the full-system engine, the
//! NoC latency harness, the MZIM control unit's partition timing) runs on
//! this one substrate:
//!
//! * [`Clock`] — a single `u64` cycle domain, surfaced as unit-checked
//!   [`flumen_units::Cycles`].
//! * [`Component`] — the typed step interface the kernel drives, with
//!   shared services ([`SimRng`], tracing) threaded through [`SimCtx`].
//! * [`EventQueue`] — deterministic `(deadline, FIFO)` scheduled wakeups
//!   for DRAM returns, phase-programming completions, and reconfiguration
//!   guard times.
//! * [`SimPhase`] + [`kernel`] loops — the warmup/measure/drain structure
//!   previously duplicated per harness.
//! * [`Snapshotable`] + [`Snapshot`] — versioned canonical-JSON
//!   checkpoints that resume bit-identically mid-run, extending the
//!   sweep's content-addressed result cache to in-progress jobs.
//!
//! The [`json`] module (canonical serialization, previously private to
//! `flumen-sweep`) lives here so snapshots and job hashes share one
//! canonical byte form.

#![warn(missing_docs)]

pub mod clock;
pub mod component;
pub mod event;
pub mod json;
pub mod kernel;
pub mod phase;
pub mod rng;
pub mod snapshot;

pub use clock::Clock;
pub use component::{Component, SimCtx};
pub use event::EventQueue;
/// Re-exported so kernel consumers can name simulation time without a
/// separate `flumen-units` dependency.
pub use flumen_units::Cycles;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use kernel::{run_for, run_phase, run_until, RunOutcome};
pub use phase::SimPhase;
pub use rng::SimRng;
pub use snapshot::{Snapshot, Snapshotable, SNAPSHOT_VERSION};
