//! The kernel's single cycle-domain clock.

use crate::json::{FromJson, Json, JsonError, ToJson};
use flumen_units::Cycles;

/// A monotonic cycle counter — the one clock domain every layer shares.
///
/// All simulated subsystems (cores, caches, the interconnect, the MZIM
/// control unit) advance in lock-step on this counter; there are no
/// per-component clocks to drift apart. The current time is exposed as
/// [`Cycles`] so downstream timing arithmetic stays unit-checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    now: u64,
}

impl Clock {
    /// A clock at cycle zero.
    pub fn new() -> Self {
        Clock { now: 0 }
    }

    /// A clock resumed at an arbitrary cycle (snapshot restore).
    pub fn at(cycle: Cycles) -> Self {
        Clock { now: cycle.value() }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> Cycles {
        Cycles::new(self.now)
    }

    /// Advances time by one cycle.
    #[inline]
    pub fn tick(&mut self) {
        self.now += 1;
    }
}

impl ToJson for Clock {
    fn to_json(&self) -> Json {
        self.now.to_json()
    }
}

impl FromJson for Clock {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Clock { now: j.as_u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_and_round_trips() {
        let mut c = Clock::new();
        for _ in 0..5 {
            c.tick();
        }
        assert_eq!(c.now(), Cycles::new(5));
        let back = Clock::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
        assert_eq!(Clock::at(Cycles::new(5)), c);
    }
}
