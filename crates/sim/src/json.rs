//! A small self-contained JSON value type with canonical serialization.
//!
//! crates.io (and therefore serde) is unreachable in the build
//! environment, so the simulation kernel carries its own serialization
//! substrate. It serves two distinct consumers — `flumen-sweep` hashes
//! canonical job specs with it, and [`crate::snapshot`] serializes live
//! simulation state with it — so two properties matter more here than
//! generality:
//!
//! * **Canonical output** — object keys are kept sorted ([`BTreeMap`])
//!   and floats print in Rust's shortest-roundtrip form, so the same
//!   value always serializes to the same bytes. Job content hashes are
//!   taken over this canonical form.
//! * **Total round-trip** — simulation outputs contain `inf` (saturated
//!   latency points), which strict JSON cannot express; the writer emits
//!   the JSON5-style tokens `Infinity`/`-Infinity`/`NaN` and the parser
//!   accepts them.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::hash::Hash;

use flumen_units::Picojoules;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; `u64` counters round-trip exactly up
    /// to 2^53, far beyond any cycle count the simulator produces).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

/// A serialization/deserialization failure with a path-ish message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a required object field.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(m) => m
                .get(key)
                .ok_or_else(|| JsonError(format!("missing field `{key}`"))),
            _ => err(format!("expected object looking up `{key}`")),
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            _ => err("expected number"),
        }
    }

    /// The value as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || !x.is_finite() {
            return err(format!("expected unsigned integer, got {x}"));
        }
        Ok(x as u64)
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as `u32`.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        Ok(self.as_u64()? as u32)
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => err("expected bool"),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => err("expected string"),
        }
    }

    /// The value as a slice of elements.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            _ => err("expected array"),
        }
    }

    /// Serializes to the canonical single-line form (hash input).
    pub fn to_canonical(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Serializes with two-space indentation (cache files, manifests).
    pub fn to_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(v) if !v.is_empty() => {
                out.push_str("[\n");
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    e.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            _ => self.write(out),
        }
    }

    /// Parses a value from text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("Infinity");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integers print without the trailing ".0" `{:?}` would add.
        let _ = write!(out, "{}", x as i64);
    } else {
        // Shortest round-trip form; deterministic for a given bit pattern.
        let _ = write!(out, "{x:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'N') if self.eat("NaN") => Ok(Json::Num(f64::NAN)),
            Some(b'I') if self.eat("Infinity") => Ok(Json::Num(f64::INFINITY)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Num(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => err(format!("bad number `{text}` at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError(format!("bad \\u escape `{hex}`")))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| JsonError("invalid utf-8".into()))?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Conversion into [`Json`].
pub trait ToJson {
    /// Serializes `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from [`Json`].
pub trait FromJson: Sized {
    /// Deserializes a value.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_u64()
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_usize()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for u32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_u32()
    }
}

// The unit type rides as `null` so stateless components (e.g. a pure
// `comb` combinator with `S = ()`) can satisfy generic snapshot bounds
// without inventing a dummy state value.
impl ToJson for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl FromJson for () {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(()),
            other => Err(JsonError(format!("expected null, got {other:?}"))),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.as_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let v: Vec<T> = FromJson::from_json(j)?;
        let got = v.len();
        v.try_into()
            .map_err(|_| JsonError(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for VecDeque<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let arr = j.as_arr()?;
        let [a, b] = arr else {
            return err(format!("expected 2-element array, got {}", arr.len()));
        };
        Ok((A::from_json(a)?, B::from_json(b)?))
    }
}

// Hash maps serialize as a key-sorted array of `[key, value]` pairs so the
// canonical text is independent of hasher iteration order — a requirement
// for snapshot determinism (identical state must hash identically).
impl<K: ToJson + Ord, V: ToJson> ToJson for HashMap<K, V> {
    fn to_json(&self) -> Json {
        // Hash order never escapes: the pairs are sorted before any byte
        // of output is produced.
        let mut entries: Vec<(&K, &V)> = self.iter().collect(); // flumen-check: allow(det-hash-iter)
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Json::Arr(
            entries
                .into_iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Eq + Hash, V: FromJson> FromJson for HashMap<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(<(K, V)>::from_json).collect()
    }
}

// BTreeMaps share the pair-array encoding (already key-sorted), so a
// field converted from HashMap to BTreeMap keeps byte-identical
// snapshots in both directions.
impl<K: ToJson, V: ToJson> ToJson for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for std::collections::BTreeMap<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()?.iter().map(<(K, V)>::from_json).collect()
    }
}

/// Serializes a full-range `u64` (content hashes, RNG words) as a
/// fixed-width hex string. `Json::Num` holds an `f64` and silently loses
/// bits past 2^53, which is fine for cycle counters but corrupts hashes.
pub fn u64_hex(x: u64) -> Json {
    Json::Str(format!("{x:016x}"))
}

/// Parses a [`u64_hex`]-encoded value.
pub fn u64_from_hex(j: &Json) -> Result<u64, JsonError> {
    u64::from_str_radix(j.as_str()?, 16).map_err(|e| JsonError(format!("bad hex u64: {e}")))
}

/// Serializes a slice of full-range `u64` values (addresses, hashes) as an
/// array of fixed-width hex strings.
pub fn u64s_hex(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|&x| u64_hex(x)).collect())
}

/// Parses an array written by [`u64s_hex`].
///
/// # Errors
///
/// Fails when the value is not an array of hex strings.
pub fn u64s_from_hex(j: &Json) -> Result<Vec<u64>, JsonError> {
    j.as_arr()?.iter().map(u64_from_hex).collect()
}

// Unit newtypes serialize as their raw numeric value: the canonical JSON
// text (and therefore every content-addressed job hash) is identical to the
// pre-`flumen-units` encoding. The unit lives in the *key* name (`_pj`
// suffix), not the value.
impl ToJson for Picojoules {
    fn to_json(&self) -> Json {
        Json::Num(self.value())
    }
}

impl FromJson for Picojoules {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Picojoules::new(j.as_f64()?))
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a plain struct, field by field.
///
/// Exported so every crate can bridge the types *it* owns (the orphan rule
/// keeps these impls next to the struct definitions, not centralized in one
/// downstream crate). Deserialization errors name the full
/// `Type.field: cause` path.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::obj([$(
                    (stringify!($field), $crate::json::ToJson::to_json(&self.$field)),
                )+])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                j: &$crate::json::Json,
            ) -> ::core::result::Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: j
                        .get(stringify!($field))
                        .and_then($crate::json::FromJson::from_json)
                        .map_err(|e| {
                            $crate::json::JsonError(format!(
                                concat!(stringify!($ty), ".", stringify!($field), ": {}"),
                                e
                            ))
                        })?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trip() {
        let v = Json::obj([
            ("b", Json::Num(1.5)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("x\"y".into())]),
            ),
            ("n", Json::Num(-0.703)),
        ]);
        let text = v.to_canonical();
        // Keys sorted regardless of insertion order.
        assert!(text.starts_with("{\"a\""));
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn canonical_is_stable() {
        let make = || Json::obj([("x", Json::Num(0.1 + 0.2)), ("y", Json::Num(16384.0))]);
        assert_eq!(make().to_canonical(), make().to_canonical());
        assert_eq!(
            make().to_canonical(),
            "{\"x\":0.30000000000000004,\"y\":16384}"
        );
    }

    #[test]
    fn non_finite_numbers_round_trip() {
        let v = Json::Arr(vec![Json::Num(f64::INFINITY), Json::Num(f64::NEG_INFINITY)]);
        let parsed = Json::parse(&v.to_canonical()).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr[0].as_f64().unwrap(), f64::INFINITY);
        assert_eq!(arr[1].as_f64().unwrap(), f64::NEG_INFINITY);
        let nan = Json::parse("NaN").unwrap();
        assert!(nan.as_f64().unwrap().is_nan());
    }

    #[test]
    fn large_counters_round_trip_exactly() {
        let cycles: u64 = 80_000_000_000;
        let j = cycles.to_json();
        assert_eq!(
            u64::from_json(&Json::parse(&j.to_canonical()).unwrap()).unwrap(),
            cycles
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
        let obj = Json::obj([("a", Json::Num(1.0))]);
        assert!(obj.get("b").is_err());
        assert!(obj.get("a").unwrap().as_str().is_err());
        assert!(Json::Num(1.5).as_u64().is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nwith \"quotes\" \\ tab\t and unicode λβ";
        let j = Json::Str(s.into());
        assert_eq!(Json::parse(&j.to_canonical()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let dq: VecDeque<u64> = VecDeque::from(vec![3, 1, 2]);
        let back: VecDeque<u64> = FromJson::from_json(&dq.to_json()).unwrap();
        assert_eq!(back, dq);

        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_json(&some.to_json()).unwrap(), some);
        assert_eq!(Option::<u64>::from_json(&none.to_json()).unwrap(), none);

        let pair: (u64, bool) = (9, true);
        assert_eq!(<(u64, bool)>::from_json(&pair.to_json()).unwrap(), pair);
        assert!(<(u64, bool)>::from_json(&Json::Arr(vec![Json::Num(1.0)])).is_err());
    }

    #[test]
    fn hash_maps_serialize_key_sorted() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        for k in [42u64, 7, 19, 3] {
            m.insert(k, k * 10);
        }
        let text = m.to_json().to_canonical();
        assert_eq!(text, "[[3,30],[7,70],[19,190],[42,420]]");
        let back: HashMap<u64, u64> = FromJson::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
