//! Versioned snapshot envelopes for checkpoint/resume.
//!
//! A snapshot captures only *dynamic* state. Configuration is not
//! serialized: restore happens onto a freshly constructed,
//! identically-configured instance (sweeps rebuild that instance
//! deterministically from the job spec), so the envelope carries a caller
//! `key` — typically the job's content hash, which already commits to the
//! full configuration — to reject snapshots taken under different configs.

use crate::json::{Json, JsonError, ToJson};
use flumen_units::Cycles;

/// Bump whenever any [`Snapshotable`] impl changes its serialized layout.
/// Stale checkpoints are discarded (the run restarts from cycle zero),
/// never misinterpreted.
pub const SNAPSHOT_VERSION: u64 = 1;

/// State that can round-trip through canonical JSON bit-identically.
///
/// Contract: `b.restore(&a.snapshot())` on a freshly constructed `b` with
/// `a`'s configuration must make every subsequent step of `b` produce
/// bit-identical observable state to `a` — f64 stats compare with
/// [`f64::to_bits`], not tolerances. The snapshot/resume proptests enforce
/// this end-to-end.
pub trait Snapshotable {
    /// Serializes all dynamic state.
    fn snapshot(&self) -> Json;

    /// Restores dynamic state captured by [`Snapshotable::snapshot`] onto
    /// an identically-configured instance.
    fn restore(&mut self, j: &Json) -> Result<(), JsonError>;
}

/// The on-disk checkpoint envelope: version + config key + clock + state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The simulation time the state was captured at.
    pub cycle: Cycles,
    /// Caller-chosen configuration fingerprint (job content hash).
    pub key: String,
    /// The component's [`Snapshotable::snapshot`] payload.
    pub state: Json,
}

impl Snapshot {
    /// Wraps component state in a versioned envelope.
    pub fn new(key: impl Into<String>, cycle: Cycles, state: Json) -> Self {
        Snapshot {
            cycle,
            key: key.into(),
            state,
        }
    }

    /// The envelope's serialized form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", self.cycle.value().to_json()),
            ("key", self.key.to_json()),
            ("state", self.state.clone()),
            ("version", SNAPSHOT_VERSION.to_json()),
        ])
    }

    /// Parses and validates an envelope. Fails on a version or key
    /// mismatch — a stale or foreign checkpoint must not restore.
    pub fn from_json(j: &Json, expect_key: &str) -> Result<Self, JsonError> {
        let version = j.get("version")?.as_u64()?;
        if version != SNAPSHOT_VERSION {
            return Err(JsonError(format!(
                "snapshot version {version} != supported {SNAPSHOT_VERSION}"
            )));
        }
        let key = j.get("key")?.as_str()?.to_string();
        if key != expect_key {
            return Err(JsonError(format!(
                "snapshot key {key:?} does not match expected {expect_key:?}"
            )));
        }
        Ok(Snapshot {
            cycle: Cycles::new(j.get("cycle")?.as_u64()?),
            key,
            state: j.get("state")?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let snap = Snapshot::new(
            "abc123",
            Cycles::new(4096),
            Json::obj([("x", 7u64.to_json())]),
        );
        let j = snap.to_json();
        let back = Snapshot::from_json(&j, "abc123").unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_wrong_key_and_version() {
        let snap = Snapshot::new("abc123", Cycles::new(1), Json::Null);
        let j = snap.to_json();
        assert!(Snapshot::from_json(&j, "other").is_err());
        let mut tampered = j.clone();
        if let Json::Obj(m) = &mut tampered {
            m.insert("version".into(), Json::Num(999.0));
        }
        assert!(Snapshot::from_json(&tampered, "abc123").is_err());
    }
}
