//! A deterministic scheduled-wakeup queue.

use crate::json::{FromJson, Json, JsonError, ToJson};
use flumen_units::Cycles;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled entry: deadline plus an insertion sequence number.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

// Ordering deliberately ignores the payload: entries pop by deadline, and
// same-deadline entries pop in insertion (FIFO) order via `seq`. That makes
// pop order a pure function of the schedule calls, independent of payload
// type — the property every determinism test in the workspace leans on.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A binary-heap event queue for scheduled wakeups: DRAM reply returns,
/// phase-programming completions, reconfiguration guard times.
///
/// Pop order is fully deterministic — `(deadline, insertion order)` — so a
/// simulation driven off this queue replays bit-identically, and the
/// canonical snapshot form ([`ToJson`]) is written deadline-sorted so equal
/// states serialize to equal bytes.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to become due at cycle `at`.
    pub fn schedule(&mut self, at: Cycles, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            at: at.value(),
            seq,
            payload,
        }));
    }

    /// Pops the next entry whose deadline is `<= now`, if any. Call in a
    /// loop to drain everything due this cycle (FIFO among ties).
    #[inline]
    pub fn pop_due(&mut self, now: Cycles) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.at <= now.value() => {}
            _ => return None,
        }
        self.heap.pop().map(|Reverse(e)| e.payload)
    }

    /// The earliest pending deadline.
    pub fn peek_deadline(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| Cycles::new(e.at))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterates over pending `(deadline, payload)` pairs in deterministic
    /// `(deadline, insertion)` order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (Cycles, &T)> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        entries.into_iter().map(|e| (Cycles::new(e.at), &e.payload))
    }
}

impl<T: ToJson> ToJson for EventQueue<T> {
    fn to_json(&self) -> Json {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        Json::obj([
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|e| {
                            Json::Arr(vec![e.at.to_json(), e.seq.to_json(), e.payload.to_json()])
                        })
                        .collect(),
                ),
            ),
            ("next_seq", self.next_seq.to_json()),
        ])
    }
}

impl<T: FromJson> FromJson for EventQueue<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let mut heap = BinaryHeap::new();
        for entry in j.get("entries")?.as_arr()? {
            let arr = entry.as_arr()?;
            let [at, seq, payload] = arr else {
                return Err(JsonError(format!(
                    "EventQueue entry: expected [at, seq, payload], got {} elements",
                    arr.len()
                )));
            };
            heap.push(Reverse(Entry {
                at: at.as_u64()?,
                seq: seq.as_u64()?,
                payload: T::from_json(payload)?,
            }));
        }
        Ok(EventQueue {
            heap,
            next_seq: j.get("next_seq")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_deadline_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(5), "a");
        q.schedule(Cycles::new(3), "b");
        q.schedule(Cycles::new(5), "c");
        q.schedule(Cycles::new(5), "d");
        assert_eq!(q.peek_deadline(), Some(Cycles::new(3)));
        assert_eq!(q.pop_due(Cycles::new(2)), None);
        assert_eq!(q.pop_due(Cycles::new(3)), Some("b"));
        assert_eq!(q.pop_due(Cycles::new(4)), None);
        // Ties at cycle 5 drain in insertion order.
        assert_eq!(q.pop_due(Cycles::new(5)), Some("a"));
        assert_eq!(q.pop_due(Cycles::new(5)), Some("c"));
        assert_eq!(q.pop_due(Cycles::new(5)), Some("d"));
        assert_eq!(q.pop_due(Cycles::new(99)), None);
        assert!(q.is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_order() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.schedule(Cycles::new(9), 90);
        q.schedule(Cycles::new(2), 20);
        q.schedule(Cycles::new(9), 91);
        let text = q.to_json().to_canonical();
        let mut back = EventQueue::<u64>::from_json(&Json::parse(&text).unwrap()).unwrap();
        // The restored queue pops identically and continues the seq space.
        assert_eq!(back.to_json().to_canonical(), text);
        assert_eq!(back.pop_due(Cycles::new(100)), Some(20));
        back.schedule(Cycles::new(9), 92); // seq 3 > existing seq 2
        assert_eq!(back.pop_due(Cycles::new(100)), Some(90));
        assert_eq!(back.pop_due(Cycles::new(100)), Some(91));
        assert_eq!(back.pop_due(Cycles::new(100)), Some(92));
    }

    #[test]
    fn len_and_iter_sorted() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles::new(7), 1u64);
        q.schedule(Cycles::new(4), 2u64);
        assert_eq!(q.len(), 2);
        let order: Vec<u64> = q.iter_sorted().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![2, 1]);
    }
}
