//! The kernel's deterministic random stream.

use crate::json::{FromJson, Json, JsonError, ToJson};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seeded, snapshotable random source threaded through
/// [`crate::SimCtx`] so components share one stream instead of carrying
/// per-struct RNG state.
///
/// Wraps the vendored xoshiro256++ [`StdRng`] and exposes its raw state,
/// which is what makes mid-run checkpoints exact: restoring the four state
/// words resumes the stream at the precise draw where the snapshot was
/// taken, with no replay burn-in.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// A stream seeded identically to `StdRng::seed_from_u64` — existing
    /// harness seeds (e.g. `RunConfig::seed`) reproduce their exact
    /// pre-kernel sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw generator state.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Resumes a stream from a [`SimRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng {
            inner: StdRng::from_state(s),
        }
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

// State words use the full 64-bit range, which `Json::Num`'s f64 cannot
// hold exactly past 2^53 — so they serialize as fixed-width hex strings.
impl ToJson for SimRng {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.state()
                .iter()
                .map(|w| crate::json::u64_hex(*w))
                .collect(),
        )
    }
}

impl FromJson for SimRng {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let arr = j.as_arr()?;
        let [a, b, c, d] = arr else {
            return Err(JsonError(format!(
                "SimRng state: expected 4 words, got {}",
                arr.len()
            )));
        };
        use crate::json::u64_from_hex;
        Ok(SimRng::from_state([
            u64_from_hex(a)?,
            u64_from_hex(b)?,
            u64_from_hex(c)?,
            u64_from_hex(d)?,
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_std_rng_sequence() {
        let mut a = SimRng::seed_from_u64(0xF1);
        let mut b = StdRng::seed_from_u64(0xF1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..13 {
            rng.next_u64();
        }
        let snap = rng.to_json();
        let tail: Vec<u64> = (0..50).map(|_| rng.next_u64()).collect();
        let mut resumed = SimRng::from_json(&snap).unwrap();
        let resumed_tail: Vec<u64> = (0..50).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn rng_trait_methods_available() {
        let mut rng = SimRng::seed_from_u64(3);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let i = rng.gen_range(0..10usize);
        assert!(i < 10);
    }
}
