//! Named run phases shared by every harness.
//!
//! The NoC latency harness and the system engine used to carry private
//! copies of the same warmup / measure / drain structure; this enum is the
//! single definition both now drive their loops with.

/// A phase of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimPhase {
    /// Pre-measurement cycles that fill pipelines and queues; statistics
    /// gathered here are discarded (reset at the warmup→measure edge).
    Warmup,
    /// The measured window all reported statistics come from.
    Measure,
    /// Post-measurement cycles that let in-flight work complete without
    /// new injections.
    Drain,
}

impl SimPhase {
    /// Stable lowercase name (trace args, logs).
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::Warmup => "warmup",
            SimPhase::Measure => "measure",
            SimPhase::Drain => "drain",
        }
    }

    /// All phases in run order.
    pub fn all() -> [SimPhase; 3] {
        [SimPhase::Warmup, SimPhase::Measure, SimPhase::Drain]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_ordered() {
        let names: Vec<&str> = SimPhase::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["warmup", "measure", "drain"]);
    }
}
