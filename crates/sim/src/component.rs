//! The typed component interface the kernel drives.

use crate::rng::SimRng;
use flumen_trace::TraceHandle;
use flumen_units::Cycles;

/// Shared per-step services: the deterministic random stream and the trace
/// sink. Threading these through the kernel (rather than storing them in
/// every simulated struct) is what lets a snapshot capture *all* run state
/// in one place.
#[derive(Debug)]
pub struct SimCtx {
    /// The run's random stream. Components must draw from this — never
    /// from ambient OS entropy — so runs replay bit-identically.
    pub rng: SimRng,
    /// The trace sink; disabled by default, free when disabled.
    pub tracer: TraceHandle,
}

impl SimCtx {
    /// A context with a seeded stream and tracing disabled.
    pub fn new(seed: u64) -> Self {
        SimCtx {
            rng: SimRng::seed_from_u64(seed),
            tracer: TraceHandle::disabled(),
        }
    }

    /// Installs a trace sink.
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }
}

/// One simulated subsystem advancing on the shared clock.
///
/// The kernel calls [`Component::step`] exactly once per cycle with the
/// current time; a composed system (e.g. the full-system engine wrapping
/// cores, caches, a network, and the MZIM control unit) implements this on
/// its top-level struct and fans the call out internally, preserving its
/// intra-cycle ordering.
pub trait Component {
    /// Advances the component through cycle `now`.
    fn step(&mut self, now: Cycles, ctx: &mut SimCtx);

    /// Whether the component has quiesced (no queued or in-flight work).
    /// Open-ended components (e.g. synthetic traffic drivers) never
    /// quiesce and keep the default.
    fn done(&self, _now: Cycles) -> bool {
        false
    }
}
