//! The cycle-stepping driver loops.

use crate::clock::Clock;
use crate::component::{Component, SimCtx};
use crate::phase::SimPhase;
use flumen_units::Cycles;

/// How a kernel loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cycles elapsed when the loop exited (the clock's final time).
    pub cycles: Cycles,
    /// `true` when the cycle cap fired before the component quiesced. A
    /// truncated run's statistics describe an unfinished execution and
    /// must be flagged as such, never silently reported.
    pub truncated: bool,
}

/// Steps `c` until it reports [`Component::done`] or `max_cycles` elapses.
///
/// Exactly the legacy `while !finished && cycle < max` loop, with the
/// distinction the old loops dropped: the caller learns *why* it stopped.
pub fn run_until<C: Component>(
    c: &mut C,
    ctx: &mut SimCtx,
    clock: &mut Clock,
    max_cycles: Cycles,
) -> RunOutcome {
    while !c.done(clock.now()) {
        if clock.now() >= max_cycles {
            return RunOutcome {
                cycles: clock.now(),
                truncated: true,
            };
        }
        c.step(clock.now(), ctx);
        clock.tick();
    }
    RunOutcome {
        cycles: clock.now(),
        truncated: false,
    }
}

/// Steps `c` for exactly `cycles` cycles, ignoring quiescence — the shape
/// of fixed-length warmup and measurement windows.
pub fn run_for<C: Component>(c: &mut C, ctx: &mut SimCtx, clock: &mut Clock, cycles: Cycles) {
    let end = clock.now() + cycles;
    while clock.now() < end {
        c.step(clock.now(), ctx);
        clock.tick();
    }
}

/// Runs one named phase: [`SimPhase::Warmup`] and [`SimPhase::Measure`]
/// are fixed windows of `limit` cycles; [`SimPhase::Drain`] runs to
/// quiescence with `limit` as a safety cap.
pub fn run_phase<C: Component>(
    phase: SimPhase,
    c: &mut C,
    ctx: &mut SimCtx,
    clock: &mut Clock,
    limit: Cycles,
) -> RunOutcome {
    match phase {
        SimPhase::Warmup | SimPhase::Measure => {
            run_for(c, ctx, clock, limit);
            RunOutcome {
                cycles: clock.now(),
                truncated: false,
            }
        }
        SimPhase::Drain => run_until(c, ctx, clock, clock.now() + limit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown {
        remaining: u64,
        steps: u64,
    }

    impl Component for Countdown {
        fn step(&mut self, _now: Cycles, _ctx: &mut SimCtx) {
            if self.remaining > 0 {
                self.remaining -= 1;
            }
            self.steps += 1;
        }

        fn done(&self, _now: Cycles) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn run_until_stops_at_quiescence() {
        let mut c = Countdown {
            remaining: 10,
            steps: 0,
        };
        let mut ctx = SimCtx::new(0);
        let mut clock = Clock::new();
        let out = run_until(&mut c, &mut ctx, &mut clock, Cycles::new(1000));
        assert_eq!(out.cycles, Cycles::new(10));
        assert!(!out.truncated);
        assert_eq!(c.steps, 10);
    }

    #[test]
    fn run_until_reports_truncation() {
        let mut c = Countdown {
            remaining: 10,
            steps: 0,
        };
        let mut ctx = SimCtx::new(0);
        let mut clock = Clock::new();
        let out = run_until(&mut c, &mut ctx, &mut clock, Cycles::new(4));
        assert!(out.truncated);
        assert_eq!(out.cycles, Cycles::new(4));
        assert_eq!(c.steps, 4);
    }

    #[test]
    fn phases_compose_on_one_clock() {
        let mut c = Countdown {
            remaining: 30,
            steps: 0,
        };
        let mut ctx = SimCtx::new(0);
        let mut clock = Clock::new();
        run_phase(
            SimPhase::Warmup,
            &mut c,
            &mut ctx,
            &mut clock,
            Cycles::new(8),
        );
        assert_eq!(clock.now(), Cycles::new(8));
        run_phase(
            SimPhase::Measure,
            &mut c,
            &mut ctx,
            &mut clock,
            Cycles::new(12),
        );
        assert_eq!(clock.now(), Cycles::new(12 + 8));
        let out = run_phase(
            SimPhase::Drain,
            &mut c,
            &mut ctx,
            &mut clock,
            Cycles::new(100),
        );
        assert!(!out.truncated);
        assert_eq!(c.steps, 30);
        assert_eq!(clock.now(), Cycles::new(30));
    }
}
