//! Full-system energy accounting (paper Fig. 13) — the McPAT substitute.
//!
//! Raw activity counts from `flumen-system` are priced with 7 nm-scaled
//! per-event energies. Dynamic NoP energy uses Table 1 link energies
//! (1.17 pJ/bit electrical, 0.703 pJ/bit photonic at 64 λ); static NoP
//! power per topology is calibrated against the paper's §5.2 relative
//! network-energy results (see each constant's comment and EXPERIMENTS.md).

use crate::compute;
use flumen_noc::NetStats;
use flumen_system::ActivityCounts;
use flumen_units::{Cycles, GigaHertz, Picojoules};

/// Which NoP the system ran on (decides the network energy model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NopKind {
    /// Electrical ring (long perimeter links).
    Ring,
    /// Electrical 2-D mesh.
    Mesh,
    /// Shared-waveguide optical bus.
    OptBus,
    /// Flumen fabric used for communication only (Flumen-I).
    FlumenComm,
    /// Flumen fabric with compute acceleration (Flumen-A).
    FlumenAccel,
    /// A pure-communication MZIM without the compute DAC/ADC overhead
    /// (the "MZIM network topology purely for communication" of §5.2).
    MzimCommOnly,
}

/// Per-event and static energy parameters, 7 nm-scaled.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Core energy per operation (OoO pipeline overhead included).
    pub core_op_pj: Picojoules,
    /// Core static energy per busy cycle.
    pub core_busy_pj: Picojoules,
    /// L1 (I or D) access energy.
    pub l1_pj: Picojoules,
    /// L2 access energy.
    pub l2_pj: Picojoules,
    /// L3 slice access energy.
    pub l3_pj: Picojoules,
    /// DRAM access energy per 64 B line.
    pub dram_pj: Picojoules,
    /// Electrical mesh link energy per bit-hop (Table 1, [37]).
    pub mesh_bit_pj: Picojoules,
    /// Electrical ring link energy, pJ/bit/hop — ring links span several
    /// chiplet pitches on the package perimeter, and metallic link energy
    /// scales with length [1]; 2.7× the mesh pitch reproduces the §5.2
    /// ring/mesh gap.
    pub ring_bit_pj: Picojoules,
    /// Photonic link energy per bit (Table 1, 64 λ).
    pub photonic_bit_pj: Picojoules,
    /// Static power per electrical router, W.
    pub elec_router_static_w: f64,
    /// OptBus static power, W: endpoint MRR thermal tuning plus the
    /// loss-dominated laser (§5.2 / Fig. 12a) — the highest of the
    /// photonic options.
    pub optbus_static_w: f64,
    /// MZIM fabric static power for communication, W: laser, MRR tuning
    /// at the endpoints, TIAs and SerDes.
    pub mzim_comm_static_w: f64,
    /// Additional always-on DAC/ADC power Flumen carries to support
    /// computation (§5.2 attributes Flumen's energy being above OptBus's
    /// to exactly this).
    pub flumen_dacadc_static_w: f64,
    /// Core leakage per core, W (McPAT-style static power).
    pub core_leak_w_per_core: f64,
    /// Shared-L3 leakage, W (whole 16 MB array).
    pub l3_leak_w: f64,
    /// DRAM background power, W.
    pub dram_background_w: f64,
}

impl EnergyParams {
    /// Default 7 nm calibration.
    pub fn paper_7nm() -> Self {
        EnergyParams {
            core_op_pj: Picojoules::new(6.0),
            core_busy_pj: Picojoules::new(10.0),
            l1_pj: Picojoules::new(0.6),
            l2_pj: Picojoules::new(2.5),
            l3_pj: Picojoules::new(20.0),
            dram_pj: Picojoules::new(6_000.0),
            mesh_bit_pj: Picojoules::new(1.17),
            ring_bit_pj: Picojoules::new(1.17 * 2.7),
            photonic_bit_pj: Picojoules::new(0.703),
            elec_router_static_w: 0.02,
            optbus_static_w: 0.5,
            mzim_comm_static_w: 0.3,
            flumen_dacadc_static_w: 0.35,
            core_leak_w_per_core: 0.25,
            l3_leak_w: 0.4,
            dram_background_w: 0.5,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::paper_7nm()
    }
}

/// Energy split by component, joules (paper Fig. 13's stacks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipelines.
    pub core_j: f64,
    /// L1 instruction caches.
    pub l1i_j: f64,
    /// L1 data caches.
    pub l1d_j: f64,
    /// Private L2s.
    pub l2_j: f64,
    /// Shared L3.
    pub l3_j: f64,
    /// DRAM.
    pub dram_j: f64,
    /// Network-on-package (dynamic + static).
    pub nop_j: f64,
    /// MZIM computation (Flumen-A only).
    pub mzim_j: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.core_j
            + self.l1i_j
            + self.l1d_j
            + self.l2_j
            + self.l3_j
            + self.dram_j
            + self.nop_j
            + self.mzim_j
    }

    /// Energy-delay product, J·s.
    pub fn edp(&self, seconds: f64) -> f64 {
        self.total_j() * seconds
    }
}

/// Prices a run: counts + network stats + runtime → per-component joules.
pub fn system_energy(
    counts: &ActivityCounts,
    net: &NetStats,
    seconds: f64,
    cores: usize,
    nop: NopKind,
    params: &EnergyParams,
) -> EnergyBreakdown {
    let mut b = EnergyBreakdown {
        core_j: (params.core_op_pj.for_each(counts.core_ops)
            + params.core_busy_pj.for_each(counts.core_busy_cycles))
        .to_joules()
            + cores as f64 * params.core_leak_w_per_core * seconds,
        l1i_j: params.l1_pj.for_each(counts.l1i_accesses).to_joules(),
        l1d_j: params.l1_pj.for_each(counts.l1d_accesses).to_joules(),
        l2_j: params.l2_pj.for_each(counts.l2_accesses).to_joules(),
        l3_j: params.l3_pj.for_each(counts.l3_accesses).to_joules() + params.l3_leak_w * seconds,
        dram_j: params.dram_pj.for_each(counts.dram_accesses).to_joules()
            + params.dram_background_w * seconds,
        nop_j: 0.0,
        mzim_j: 0.0,
    };
    b.nop_j = network_energy_j(net, seconds, nop, params);
    if nop == NopKind::FlumenAccel {
        b.mzim_j = mzim_compute_energy_j(counts);
    }
    b
}

/// Network energy alone (used for the §5.2 synthetic comparison, E6).
pub fn network_energy_j(net: &NetStats, seconds: f64, nop: NopKind, params: &EnergyParams) -> f64 {
    let routers = net.link_busy.len().max(1) as f64;
    match nop {
        NopKind::Ring => {
            params.ring_bit_pj.for_each(net.bit_hops).to_joules()
                + params.elec_router_static_w * 16.0 * seconds
        }
        NopKind::Mesh => {
            params.mesh_bit_pj.for_each(net.bit_hops).to_joules()
                + params.elec_router_static_w * 16.0 * seconds
        }
        NopKind::OptBus => {
            params.photonic_bit_pj.for_each(net.bit_hops).to_joules()
                + params.optbus_static_w * seconds
        }
        NopKind::MzimCommOnly => {
            params.photonic_bit_pj.for_each(net.bit_hops).to_joules()
                + params.mzim_comm_static_w * seconds
        }
        NopKind::FlumenComm | NopKind::FlumenAccel => {
            params.photonic_bit_pj.for_each(net.bit_hops).to_joules()
                + (params.mzim_comm_static_w + params.flumen_dacadc_static_w) * seconds
        }
    }
    .max(routers * 0.0) // routers currently informational
}

/// MZIM computation energy from the run's offload activity, using the
/// fitted Fig. 12b model: per-sample conversion plus active-time static
/// power of the engaged partitions.
pub fn mzim_compute_energy_j(counts: &ActivityCounts) -> f64 {
    if counts.mzim_mvms == 0 {
        return 0.0;
    }
    // Average partition size from samples per MVM.
    let n = (counts.mzim_input_samples as f64 / counts.mzim_mvms as f64)
        .round()
        .max(2.0);
    let per_sample_pj = compute::E_CONV_PJ;
    let sample_j = per_sample_pj
        .for_each(counts.mzim_input_samples + counts.mzim_output_samples)
        .to_joules();
    // Static: phase DACs + laser over the cycles partitions were active
    // (the 2.5 GHz core clock).
    let active_ns = Cycles::new(counts.mzim_active_cycles).at(GigaHertz::new(2.5));
    let static_mw = n * n * compute::P_PHASE_DAC_MW
        + compute::COMPUTE_LAMBDAS as f64 * compute::flumen_laser_mw(n as usize);
    let static_j = (active_ns * static_mw).to_joules();
    // Incremental reprogramming: per-MZI phase writes counted by the
    // control unit's program cache (zero when the cache is disabled, so
    // the baseline energy is bit-identical).
    let phase_write_j = compute::E_PHASE_WRITE_PJ
        .for_each(counts.mzim_programmed_mzis)
        .to_joules();
    sample_j + static_j + phase_write_j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_sample() -> ActivityCounts {
        ActivityCounts {
            core_ops: 1_000_000,
            core_busy_cycles: 600_000,
            l1i_accesses: 1_000_000,
            l1d_accesses: 400_000,
            l2_accesses: 50_000,
            l3_accesses: 20_000,
            dram_accesses: 2_000,
            ..Default::default()
        }
    }

    fn net_sample() -> NetStats {
        let mut n = NetStats::new(16);
        n.bit_hops = 50_000_000;
        n.bits_injected = 20_000_000;
        n.cycles = 100_000;
        n
    }

    #[test]
    fn breakdown_totals_components() {
        let b = system_energy(
            &counts_sample(),
            &net_sample(),
            4e-5,
            64,
            NopKind::Mesh,
            &EnergyParams::paper_7nm(),
        );
        let sum = b.core_j + b.l1i_j + b.l1d_j + b.l2_j + b.l3_j + b.dram_j + b.nop_j + b.mzim_j;
        assert!((b.total_j() - sum).abs() < 1e-18);
        assert!(b.core_j > 0.0 && b.dram_j > 0.0 && b.nop_j > 0.0);
        assert_eq!(b.mzim_j, 0.0);
    }

    #[test]
    fn ring_nop_costs_more_than_mesh_for_same_traffic() {
        let p = EnergyParams::paper_7nm();
        let net = net_sample();
        let ring = network_energy_j(&net, 4e-5, NopKind::Ring, &p);
        let mesh = network_energy_j(&net, 4e-5, NopKind::Mesh, &p);
        assert!(ring > 2.0 * mesh);
    }

    #[test]
    fn flumen_carries_dacadc_overhead_over_pure_mzim() {
        let p = EnergyParams::paper_7nm();
        let net = net_sample();
        let flumen = network_energy_j(&net, 4e-5, NopKind::FlumenComm, &p);
        let pure = network_energy_j(&net, 4e-5, NopKind::MzimCommOnly, &p);
        assert!(flumen > pure);
        let diff = flumen - pure;
        assert!((diff - p.flumen_dacadc_static_w * 4e-5).abs() < 1e-12);
    }

    #[test]
    fn mzim_energy_zero_without_offload() {
        assert_eq!(mzim_compute_energy_j(&ActivityCounts::default()), 0.0);
    }

    #[test]
    fn mzim_energy_scales_with_samples() {
        let mut c = ActivityCounts {
            mzim_mvms: 100,
            mzim_input_samples: 800, // n = 8
            mzim_output_samples: 800,
            mzim_active_cycles: 10_000,
            ..Default::default()
        };
        let e1 = mzim_compute_energy_j(&c);
        c.mzim_input_samples *= 2;
        c.mzim_mvms *= 2;
        c.mzim_output_samples *= 2;
        let e2 = mzim_compute_energy_j(&c);
        assert!(e2 > e1);
    }

    #[test]
    fn edp_multiplies_energy_by_time() {
        let b = EnergyBreakdown {
            core_j: 2.0,
            ..Default::default()
        };
        assert!((b.edp(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mzim_offload_reduces_core_energy_share() {
        // Same total work; Flumen-A moves ops off the cores.
        let p = EnergyParams::paper_7nm();
        let net = net_sample();
        let baseline = system_energy(&counts_sample(), &net, 4e-5, 64, NopKind::Mesh, &p);
        let mut offloaded = counts_sample();
        offloaded.core_ops /= 2;
        offloaded.core_busy_cycles /= 2;
        offloaded.l1i_accesses /= 2;
        offloaded.mzim_mvms = 1_000;
        offloaded.mzim_input_samples = 8_000;
        offloaded.mzim_output_samples = 8_000;
        offloaded.mzim_active_cycles = 20_000;
        let accel = system_energy(&offloaded, &net, 2e-5, 64, NopKind::FlumenAccel, &p);
        assert!(accel.core_j < baseline.core_j);
        assert!(accel.mzim_j > 0.0);
        assert!(accel.total_j() < baseline.total_j());
    }
}

// JSON bridges (canonical serialized form; field names feed sweep job
// hashes and result files).
flumen_sim::json_struct!(EnergyParams {
    core_op_pj,
    core_busy_pj,
    l1_pj,
    l2_pj,
    l3_pj,
    dram_pj,
    mesh_bit_pj,
    ring_bit_pj,
    photonic_bit_pj,
    elec_router_static_w,
    optbus_static_w,
    mzim_comm_static_w,
    flumen_dacadc_static_w,
    core_leak_w_per_core,
    l3_leak_w,
    dram_background_w,
});

flumen_sim::json_struct!(EnergyBreakdown {
    core_j,
    l1i_j,
    l1d_j,
    l2_j,
    l3_j,
    dram_j,
    nop_j,
    mzim_j
});
