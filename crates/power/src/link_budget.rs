//! Itemized photonic link power budget (per endpoint).
//!
//! The §5.2 network-energy results hinge on the static power envelope of
//! each photonic option; this module derives those envelopes from the
//! Table 2 device constants so the calibration in `EnergyParams` is
//! auditable component by component.

use flumen_photonics::{loss, DeviceParams};
use flumen_units::Milliwatts;

/// Per-endpoint power itemization for a WDM photonic link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPowerBudget {
    /// Wavelengths carried.
    pub lambdas: usize,
    /// Laser wall-plug power across all wavelengths.
    pub laser_mw: Milliwatts,
    /// MRR thermal tuning (modulator + demux ring per λ).
    pub tuning_mw: Milliwatts,
    /// Modulator drive + driver power.
    pub modulation_mw: Milliwatts,
    /// Receive chain: TIAs.
    pub tia_mw: Milliwatts,
    /// Serializers/deserializers.
    pub serdes_mw: Milliwatts,
}

impl LinkPowerBudget {
    /// Total per-endpoint power.
    pub fn total_mw(&self) -> Milliwatts {
        self.laser_mw + self.tuning_mw + self.modulation_mw + self.tia_mw + self.serdes_mw
    }
}

/// The budget for one endpoint of a `k`-endpoint Flumen fabric carrying
/// `lambdas` wavelengths.
pub fn flumen_endpoint_budget(k: usize, lambdas: usize, dev: &DeviceParams) -> LinkPowerBudget {
    let per_lambda_laser = loss::flumen_laser_power_mw(k, lambdas, dev);
    budget(lambdas, per_lambda_laser, dev)
}

/// The budget for one endpoint of a `k`-node optical bus carrying
/// `lambdas` wavelengths — note the loss-driven laser term.
pub fn optbus_endpoint_budget(k: usize, lambdas: usize, dev: &DeviceParams) -> LinkPowerBudget {
    let per_lambda_laser = loss::optbus_laser_power_mw(k, lambdas, dev);
    budget(lambdas, per_lambda_laser, dev)
}

fn budget(lambdas: usize, per_lambda_laser_mw: Milliwatts, dev: &DeviceParams) -> LinkPowerBudget {
    let l = lambdas as f64;
    LinkPowerBudget {
        lambdas,
        laser_mw: l * per_lambda_laser_mw,
        // One modulating ring at TX and one demux ring at RX per λ.
        tuning_mw: 2.0 * l * dev.mrr_thermal_tuning_mw,
        modulation_mw: l * (dev.mrr_modulation_mw + dev.mrr_driver_mw),
        tia_mw: Milliwatts::from_microwatts(l * dev.tia_power_uw),
        serdes_mw: l * dev.serdes_power_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let d = DeviceParams::paper();
        let b = flumen_endpoint_budget(16, 64, &d);
        let sum = b.laser_mw + b.tuning_mw + b.modulation_mw + b.tia_mw + b.serdes_mw;
        assert!((b.total_mw() - sum).value().abs() < 1e-12);
        assert_eq!(b.lambdas, 64);
    }

    #[test]
    fn tuning_dominates_flumen_at_64_lambdas() {
        // 128 rings × 1 mW of thermal tuning is the endpoint's biggest
        // line item on the low-loss Flumen path.
        let d = DeviceParams::paper();
        let b = flumen_endpoint_budget(16, 64, &d);
        assert!((b.tuning_mw.value() - 128.0).abs() < 1e-9);
        assert!(b.tuning_mw > b.laser_mw);
        assert!(b.tuning_mw > b.modulation_mw);
    }

    #[test]
    fn optbus_laser_exceeds_flumen_laser() {
        let d = DeviceParams::paper();
        let fl = flumen_endpoint_budget(16, 32, &d);
        let ob = optbus_endpoint_budget(16, 32, &d);
        assert!(
            ob.laser_mw > 10.0 * fl.laser_mw,
            "{} vs {}",
            ob.laser_mw.value(),
            fl.laser_mw.value()
        );
        // Everything else is identical hardware.
        assert_eq!(ob.tuning_mw, fl.tuning_mw);
        assert_eq!(ob.serdes_mw, fl.serdes_mw);
    }

    #[test]
    fn budget_scales_linearly_with_lambdas_except_laser() {
        let d = DeviceParams::paper();
        let b16 = flumen_endpoint_budget(16, 16, &d);
        let b32 = flumen_endpoint_budget(16, 32, &d);
        assert!((b32.tuning_mw / b16.tuning_mw - 2.0).abs() < 1e-9);
        // Laser grows super-linearly: per-λ power rises with λ count too.
        assert!(b32.laser_mw > 2.0 * b16.laser_mw);
    }

    #[test]
    fn sixteen_node_system_envelope_is_plausible() {
        // 16 endpoints at 64 λ: the whole-fabric static envelope should
        // land in the same regime as the §5.2 calibration constants
        // (a few watts).
        let d = DeviceParams::paper();
        let b = flumen_endpoint_budget(16, 64, &d);
        let system_w = (16.0 * b.total_mw()).to_watts();
        assert!(system_w > 1.0 && system_w < 10.0, "{system_w} W");
    }
}
