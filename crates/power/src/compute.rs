//! Computation energy models (paper §5.3, Fig. 12b/c).
//!
//! Two competitors:
//!
//! * **Electrical MAC unit** — the 8-bit approximate multiplier of [13]:
//!   0.75 mW at 2.5 GHz. The paper's quoted 554 pJ for a 16×16×8-vector
//!   product pins the effective energy at 0.2705 pJ/MAC.
//! * **Flumen MZIM** — one `N×N` matrix product per fabric pass with `p`
//!   input vectors on `p` wavelengths. Energy =
//!   `t_op · (N²·P_phase-DAC)  +  p · (N·E_conv + t_op·P_laser(N))`, where
//!   `t_op` is the 6 ns partition programming plus the 5 GHz streaming
//!   time, and laser power grows exponentially with mesh depth.
//!
//! The three free constants (`P_PHASE_DAC_MW`, `E_CONV_PJ`,
//! `LASER_BASE_MW`/`COMPUTE_MZI_LOSS_DB`) are fitted to the six §5.3
//! operating points; four land within 2 % and the 8×8 points within ~2×
//! (see EXPERIMENTS.md for the paper-vs-measured table).

use flumen_units::{Decibels, GigaHertz, Milliwatts, Nanoseconds, Picojoules};

/// Electrical MAC energy per multiply-accumulate (derived from the
/// paper's 554 pJ @ 16×16×8 point).
pub const ELEC_MAC_PJ: Picojoules = Picojoules::new(554.0 / 2048.0);

/// Static power of one MZI phase-shifter DAC (fitted).
pub const P_PHASE_DAC_MW: Milliwatts = Milliwatts::new(0.0153);
/// Modulation + conversion energy per analog sample (fitted).
pub const E_CONV_PJ: Picojoules = Picojoules::new(0.3);
/// Dynamic energy of writing one MZI phase DAC code: the phase-shifter
/// DAC drawing its static power for the 6 ns programming window. Only
/// charged when the control unit's program cache tracks incremental
/// reprogramming (`ActivityCounts::mzim_programmed_mzis`); the baseline
/// model folds programming into `P_PHASE_DAC_MW` occupancy.
pub const E_PHASE_WRITE_PJ: Picojoules = Picojoules::new(0.0153 * 6.0);
/// Laser scaling prefactor (receiver floor / wall-plug efficiency).
pub const LASER_BASE_MW: Milliwatts = Milliwatts::new(0.084);
/// Effective per-MZI insertion loss on the compute path (low-loss
/// assumption for the fitted model).
pub const COMPUTE_MZI_LOSS_DB: Decibels = Decibels::new(0.202);
/// Partition programming (switch) time (Table 1).
pub const SWITCH_NS: Nanoseconds = Nanoseconds::new(6.0);
/// Input modulation rate (Table 1).
pub const MOD_GHZ: GigaHertz = GigaHertz::new(5.0);
/// Wavelengths available for computation (Table 1).
pub const COMPUTE_LAMBDAS: usize = 8;

/// Energy of an `n×n` matrix times `p` input vectors on the electrical
/// MAC unit.
pub fn electrical_matmul_pj(n: usize, p: usize) -> Picojoules {
    ELEC_MAC_PJ.for_each((n * n * p) as u64)
}

/// Fabric occupancy for one `n×n × p`-vector product.
pub fn flumen_op_time_ns(p: usize) -> Nanoseconds {
    let passes = p.div_ceil(COMPUTE_LAMBDAS).max(1);
    SWITCH_NS + MOD_GHZ.ns_for(passes as f64)
}

/// Laser wall-plug power per compute wavelength for an `n`-input
/// partition.
pub fn flumen_laser_mw(n: usize) -> Milliwatts {
    let loss_db = (2 * n + 1) as f64 * COMPUTE_MZI_LOSS_DB;
    LASER_BASE_MW * loss_db.to_linear()
}

/// One-time **programming** energy of a `p`-vector batch on an `n`-input
/// Flumen partition: the `n²` phase DACs held for the whole fabric
/// occupancy window. Paid once per mesh configuration regardless of batch
/// size — the term batched MVM amortizes.
pub fn flumen_programming_pj(n: usize, p: usize) -> Picojoules {
    let t = flumen_op_time_ns(p);
    t * (n * n) as f64 * P_PHASE_DAC_MW
}

/// Per-vector **propagation** energy on an `n`-input Flumen partition:
/// DAC/ADC conversion of the `n` input/output samples plus the laser
/// wall-plug energy for one vector's traversal. Paid `p` times per batch.
pub fn flumen_propagation_pj(n: usize, p: usize) -> Picojoules {
    let t = flumen_op_time_ns(p);
    n as f64 * E_CONV_PJ + t * flumen_laser_mw(n)
}

/// Energy of an `n×n` matrix times `p` vectors on an `n`-input Flumen
/// partition.
///
/// Defined as exactly `1×programming + p×propagation` — the batched-MVM
/// conservation identity
/// `flumen_matmul_pj(n, p) == flumen_programming_pj(n, p) + p · flumen_propagation_pj(n, p)`
/// holds bit-exactly by construction (same operands, same order).
pub fn flumen_matmul_pj(n: usize, p: usize) -> Picojoules {
    flumen_programming_pj(n, p) + p as f64 * flumen_propagation_pj(n, p)
}

/// Energy per MAC for the Flumen fabric (Fig. 12c).
pub fn flumen_mac_pj(n: usize, p: usize) -> Picojoules {
    flumen_matmul_pj(n, p) / (n * n * p) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(measured: Picojoules, paper: f64) -> f64 {
        (measured.value() - paper).abs() / paper
    }

    #[test]
    fn electrical_anchor_points() {
        // §5.3: 69.2 pJ @ 8×8×4 and 554 pJ @ 16×16×8.
        assert!(rel_err(electrical_matmul_pj(8, 4), 69.2) < 0.01);
        assert!(rel_err(electrical_matmul_pj(16, 8), 554.0) < 0.001);
    }

    #[test]
    fn flumen_fitted_points() {
        // 16×16×8: paper 82 pJ.
        assert!(
            rel_err(flumen_matmul_pj(16, 8), 82.0) < 0.05,
            "{}",
            flumen_matmul_pj(16, 8)
        );
        // 64×64: paper 0.62 / 1.32 / 2.24 nJ for 1 / 4 / 8 MVMs.
        assert!(
            rel_err(flumen_matmul_pj(64, 1), 620.0) < 0.05,
            "{}",
            flumen_matmul_pj(64, 1)
        );
        assert!(
            rel_err(flumen_matmul_pj(64, 4), 1320.0) < 0.05,
            "{}",
            flumen_matmul_pj(64, 4)
        );
        assert!(
            rel_err(flumen_matmul_pj(64, 8), 2240.0) < 0.05,
            "{}",
            flumen_matmul_pj(64, 8)
        );
    }

    #[test]
    fn flumen_beats_electrical_at_paper_points() {
        // Paper ratios: 2× @ (8,4), ~7× @ (16,8), 1.8/3.4/4.0× @ 64.
        for (n, p, min_ratio) in [
            (8usize, 4usize, 1.8f64),
            (8, 8, 3.0),
            (16, 8, 6.0),
            (64, 1, 1.6),
            (64, 4, 3.0),
            (64, 8, 3.5),
        ] {
            let ratio = electrical_matmul_pj(n, p) / flumen_matmul_pj(n, p);
            assert!(ratio > min_ratio, "({n},{p}): ratio {ratio:.2}");
        }
    }

    #[test]
    fn advantage_grows_with_vectors() {
        let r1 = electrical_matmul_pj(16, 1) / flumen_matmul_pj(16, 1);
        let r8 = electrical_matmul_pj(16, 8) / flumen_matmul_pj(16, 8);
        assert!(r8 > r1);
    }

    #[test]
    fn mac_energy_decreases_with_size_and_wavelengths() {
        // Fig. 12c: more parallelism amortizes the static DAC power.
        assert!(flumen_mac_pj(16, 8) < flumen_mac_pj(8, 8));
        assert!(flumen_mac_pj(8, 8) < flumen_mac_pj(8, 1));
        assert!(flumen_mac_pj(32, 8) < flumen_mac_pj(16, 8));
    }

    #[test]
    fn flumen_energy_monotone_in_work() {
        for n in [4usize, 8, 16, 32, 64] {
            for p in 1..8 {
                assert!(flumen_matmul_pj(n, p + 1) > flumen_matmul_pj(n, p));
            }
        }
    }

    #[test]
    fn batched_energy_conservation_is_exact() {
        // batched_total == 1×programming + B×propagation, bit-exact —
        // the identity the batched-offload conservation suite relies on.
        for n in [4usize, 8, 16, 64, 128] {
            for p in [1usize, 2, 7, 8, 9, 64, 1024] {
                let total = flumen_matmul_pj(n, p).value();
                let split =
                    (flumen_programming_pj(n, p) + p as f64 * flumen_propagation_pj(n, p)).value();
                assert_eq!(total.to_bits(), split.to_bits(), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn batching_amortizes_programming() {
        // Per-vector energy must fall strictly with batch size, converging
        // toward the propagation floor as the fixed programming term is
        // spread over more vectors (at n=64 programming is ~63% of the
        // batch-1 energy, so the asymptotic ratio is ≈2.2×).
        let per_vec = |p: usize| flumen_matmul_pj(64, p).value() / p as f64;
        assert!(per_vec(8) < per_vec(4));
        assert!(per_vec(4) < per_vec(1));
        assert!(per_vec(1) / per_vec(64) > 2.0);
        let floor = flumen_propagation_pj(64, 64).value();
        assert!(per_vec(64) < 1.1 * floor);
    }

    #[test]
    fn op_time_includes_extra_passes() {
        assert!((flumen_op_time_ns(8).value() - 6.2).abs() < 1e-12);
        assert!((flumen_op_time_ns(16).value() - 6.4).abs() < 1e-12);
        assert!((flumen_op_time_ns(1).value() - 6.2).abs() < 1e-12);
    }
}
