//! # flumen-power
//!
//! Energy, power and area models for the Flumen reproduction — the
//! McPAT + device-table substitute.
//!
//! * [`compute`] — the Fig. 12b/c computation-energy models (electrical
//!   MAC unit vs Flumen MZIM), fitted to the paper's §5.3 operating
//!   points.
//! * [`area`] — the §5.1 area model (endpoints, fabric, controller,
//!   16→128 chiplet scaling).
//! * [`system_energy`](crate::system_energy()) — prices a full-system run
//!   (activity counts + network stats) into the per-component breakdown of
//!   Fig. 13, with [`NopKind`] selecting the network energy model.
//!
//! Laser-power scaling versus device losses (Fig. 12a) lives in
//! `flumen_photonics::loss`, next to the loss models it depends on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod compute;
mod link_budget;
mod system_energy;

pub use link_budget::{flumen_endpoint_budget, optbus_endpoint_budget, LinkPowerBudget};
pub use system_energy::{
    mzim_compute_energy_j, network_energy_j, system_energy, EnergyBreakdown, EnergyParams, NopKind,
};
