//! Area model (paper §5.1), 7 nm-scaled.
//!
//! The paper's numbers pin the model exactly:
//!
//! * an endpoint (chiplet) is 9.46 mm², 4.2 % of which is the photonic
//!   transceiver;
//! * an MZI footprint of 0.14 mm² reproduces both the 8×8 fabric
//!   (36 MZIs → 5.04 mm²) and the 64×64 fabric (2080 MZIs → 291.20 mm²);
//! * fabric + control unit = 11.2 mm² for the 8×8, giving a 6.16 mm²
//!   controller.

/// Chiplet (endpoint) area including the photonic transceiver, mm².
pub const ENDPOINT_MM2: f64 = 9.46;
/// Fraction of the endpoint taken by the photonic transceiver.
pub const TRANSCEIVER_FRACTION: f64 = 0.042;
/// Footprint of one MZI (interposer), mm².
pub const MZI_MM2: f64 = 0.14;
/// MZIM control unit area, mm².
pub const CONTROLLER_MM2: f64 = 6.16;

/// MZI count of an `n`-input Flumen fabric: the unitary mesh plus the
/// attenuator column.
pub fn fabric_mzi_count(n: usize) -> usize {
    n * (n - 1) / 2 + n
}

/// Area of an `n`-input Flumen MZIM, mm² (interposer).
pub fn mzim_area_mm2(n: usize) -> f64 {
    fabric_mzi_count(n) as f64 * MZI_MM2
}

/// Area of one chiplet without a photonic transceiver (electrical
/// baseline), mm².
pub fn electrical_endpoint_mm2() -> f64 {
    ENDPOINT_MM2 * (1.0 - TRANSCEIVER_FRACTION)
}

/// Total area of a Flumen system with `chiplets` endpoints and an
/// `n`-input fabric, mm².
pub fn flumen_system_mm2(chiplets: usize, n: usize) -> f64 {
    chiplets as f64 * ENDPOINT_MM2 + mzim_area_mm2(n) + CONTROLLER_MM2
}

/// Total area of the electrical-mesh baseline with `chiplets` endpoints,
/// mm² (mesh routers/links are folded into the chiplet area, as in the
/// paper's McPAT accounting).
pub fn mesh_system_mm2(chiplets: usize) -> f64 {
    chiplets as f64 * electrical_endpoint_mm2()
}

/// One row of the paper's scaling argument: fabric area vs combined
/// chiplet area for a given system size.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Chiplet count.
    pub chiplets: usize,
    /// Fabric input count.
    pub fabric_n: usize,
    /// Fabric area, mm².
    pub fabric_mm2: f64,
    /// Combined chiplet area, mm².
    pub chiplets_mm2: f64,
    /// Fabric area as a fraction of chiplet area.
    pub fabric_fraction: f64,
}

/// Scaling rows for the 16→128 chiplet argument (paper §5.1). The fabric
/// needs `chiplets/2` inputs (two chiplets share a serialized port pair in
/// the paper's 16-chiplet / 8×8 layout).
pub fn scaling_table(chiplet_counts: &[usize]) -> Vec<AreaRow> {
    chiplet_counts
        .iter()
        .map(|&c| {
            let n = c / 2;
            let fabric = mzim_area_mm2(n);
            let chips = c as f64 * ENDPOINT_MM2;
            AreaRow {
                chiplets: c,
                fabric_n: n,
                fabric_mm2: fabric,
                chiplets_mm2: chips,
                fabric_fraction: fabric / chips,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_input_fabric_matches_paper() {
        assert_eq!(fabric_mzi_count(8), 36);
        assert!((mzim_area_mm2(8) - 5.04).abs() < 1e-9);
    }

    #[test]
    fn sixty_four_input_fabric_matches_paper() {
        assert_eq!(fabric_mzi_count(64), 2080);
        assert!((mzim_area_mm2(64) - 291.20).abs() < 1e-9);
    }

    #[test]
    fn total_system_area_matches_paper() {
        // §5.1: 16 chiplets (151.36 mm²) + 8×8 MZIM + controller (11.2 mm²)
        // = 162.6 mm².
        let total = flumen_system_mm2(16, 8);
        assert!((total - 162.56).abs() < 0.1, "{total}");
    }

    #[test]
    fn mesh_baseline_and_overhead() {
        // Mesh ≈ 144.9 mm²; Flumen is ~17.7 mm² (12.2 %) larger. (The
        // paper prints "114.9" but its own +17.7 mm² / +12.2 % arithmetic
        // requires 144.9.)
        let mesh = mesh_system_mm2(16);
        assert!((mesh - 144.98).abs() < 0.2, "{mesh}");
        let flumen = flumen_system_mm2(16, 8);
        let overhead = flumen - mesh;
        assert!((overhead - 17.7).abs() < 0.3, "{overhead}");
        let rel = overhead / mesh;
        assert!((rel - 0.122).abs() < 0.01, "{rel}");
    }

    #[test]
    fn scaling_fabric_fraction_grows_slowly() {
        let rows = scaling_table(&[16, 32, 64, 128]);
        // 128 chiplets: 64×64 fabric = 291.2 mm² vs 1210.88 mm² chiplets.
        let last = &rows[3];
        assert!((last.fabric_mm2 - 291.2).abs() < 1e-6);
        assert!((last.chiplets_mm2 - 1210.88).abs() < 1e-6);
        // Fabric stays a modest fraction (~¼) even at 128 chiplets.
        assert!(last.fabric_fraction < 0.25);
        // Fraction grows with scale (MZI count is quadratic).
        assert!(rows[0].fabric_fraction < rows[3].fabric_fraction);
    }
}
