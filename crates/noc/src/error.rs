//! Error types for the NoC simulator.

use std::error::Error;
use std::fmt;

/// A convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, NocError>;

/// Errors produced by network construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A node index was out of range.
    InvalidNode {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the network.
        nodes: usize,
    },
    /// The requested topology shape is unsupported.
    InvalidTopology {
        /// Human-readable requirement.
        reason: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidNode { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node network")
            }
            NocError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!NocError::InvalidNode { node: 9, nodes: 4 }
            .to_string()
            .is_empty());
        assert!(!NocError::InvalidTopology { reason: "x".into() }
            .to_string()
            .is_empty());
    }
}
