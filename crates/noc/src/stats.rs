//! Network statistics: latency, throughput, per-link utilization, and the
//! raw activity counts the energy model consumes.

/// Aggregated statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets handed to the network.
    pub injected: u64,
    /// Packet deliveries (a multicast counts once per destination).
    pub delivered: u64,
    /// Sum of end-to-end latencies (cycles) over deliveries.
    pub latency_sum: u64,
    /// Maximum delivery latency seen.
    pub latency_max: u64,
    /// Latency histogram in power-of-two buckets: bucket `i` counts
    /// deliveries with latency in `[2^i, 2^{i+1})` (bucket 0 holds 0–1).
    /// Cheap enough to keep always-on and sufficient for p50/p99.
    pub latency_hist: [u64; 24],
    /// Total bits injected.
    pub bits_injected: u64,
    /// Total bit·hops moved across links (electrical energy ∝ this).
    pub bit_hops: u64,
    /// Per-link busy cycles, indexed by link id (meaning is
    /// topology-specific; endpoint links for the photonic fabrics).
    pub link_busy: Vec<u64>,
    /// Fabric reconfigurations performed (MZIM only).
    pub reconfigurations: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NetStats {
    /// Creates zeroed statistics with `links` utilization counters.
    pub fn new(links: usize) -> Self {
        NetStats {
            link_busy: vec![0; links],
            ..NetStats::default()
        }
    }

    /// Records one delivery latency into the aggregate counters.
    pub fn record_latency(&mut self, lat: u64) {
        self.delivered += 1;
        self.latency_sum += lat;
        self.latency_max = self.latency_max.max(lat);
        let bucket = (64 - lat.max(1).leading_zeros() as usize - 1).min(23);
        self.latency_hist[bucket] += 1;
    }

    /// Approximate latency percentile, linearly interpolated within the
    /// histogram bucket containing the quantile. `q = 0.0` returns the
    /// lower edge of the fastest occupied bucket, `q = 1.0` the true
    /// maximum latency. `None` before any delivery.
    ///
    /// # Panics
    ///
    /// Panics unless `q ∈ [0, 1]`.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        flumen_trace::pow2_percentile(&self.latency_hist, self.delivered, self.latency_max, q)
    }

    /// Mean end-to-end latency in cycles (`None` before any delivery).
    pub fn avg_latency(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.delivered as f64)
        }
    }

    /// Mean link utilization over the run, in `[0, 1]`.
    pub fn avg_link_utilization(&self) -> f64 {
        if self.cycles == 0 || self.link_busy.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.link_busy.iter().sum();
        // flumen-check: allow(no-bare-cast) — dimensionless busy/total ratio, not a time
        busy as f64 / (self.cycles as f64 * self.link_busy.len() as f64)
    }

    /// Per-link utilizations in `[0, 1]`.
    pub fn link_utilizations(&self) -> Vec<f64> {
        if self.cycles == 0 {
            return vec![0.0; self.link_busy.len()];
        }
        self.link_busy
            .iter()
            // flumen-check: allow(no-bare-cast) — dimensionless busy/total ratio, not a time
            .map(|&b| b as f64 / self.cycles as f64)
            .collect()
    }

    /// Delivered throughput in packets per node per cycle.
    pub fn throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        // flumen-check: allow(no-bare-cast) — packets per node-cycle rate, not a time
        self.delivered as f64 / (self.cycles as f64 * nodes as f64)
    }

    /// Clears counters while keeping the link vector size (used at the end
    /// of warmup so measurements exclude transient state).
    pub fn reset(&mut self) {
        let links = self.link_busy.len();
        *self = NetStats::new(links);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_none_when_empty() {
        assert_eq!(NetStats::new(4).avg_latency(), None);
    }

    #[test]
    fn avg_latency_mean() {
        let mut s = NetStats::new(0);
        s.delivered = 4;
        s.latency_sum = 100;
        assert_eq!(s.avg_latency(), Some(25.0));
    }

    #[test]
    fn record_latency_updates_everything() {
        let mut s = NetStats::new(0);
        s.record_latency(5);
        s.record_latency(100);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.latency_sum, 105);
        assert_eq!(s.latency_max, 100);
        assert_eq!(s.avg_latency(), Some(52.5));
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut s = NetStats::new(0);
        // 99 fast deliveries (~4 cycles), one slow (~1000).
        for _ in 0..99 {
            s.record_latency(4);
        }
        s.record_latency(1000);
        let p50 = s.latency_percentile(0.5).unwrap();
        let p99 = s.latency_percentile(0.99).unwrap();
        let p100 = s.latency_percentile(1.0).unwrap();
        assert!(p50 <= 8, "p50 bucket {p50}");
        assert!(p99 <= 8, "p99 still in the fast bucket: {p99}");
        assert_eq!(p100, 1000, "q=1 returns the true maximum");
        assert_eq!(NetStats::new(0).latency_percentile(0.5), None);
    }

    #[test]
    fn percentile_accepts_interval_endpoints() {
        let mut s = NetStats::new(0);
        for lat in [4u64, 5, 6, 7] {
            s.record_latency(lat);
        }
        // q=0 is the lower edge of the fastest occupied bucket ([4, 8)).
        assert_eq!(s.latency_percentile(0.0), Some(4));
        assert_eq!(s.latency_percentile(1.0), Some(7));
    }

    #[test]
    fn percentile_empty_returns_none_at_endpoints() {
        assert_eq!(NetStats::new(0).latency_percentile(0.0), None);
        assert_eq!(NetStats::new(0).latency_percentile(1.0), None);
    }

    #[test]
    fn percentile_single_delivery_is_exact_at_extremes() {
        let mut s = NetStats::new(0);
        s.record_latency(37);
        // One delivery: q=1 is the value itself; the interpolated median
        // stays inside the value's bucket [32, 37].
        assert_eq!(s.latency_percentile(1.0), Some(37));
        let p50 = s.latency_percentile(0.5).unwrap();
        assert!((32..=37).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let mut s = NetStats::new(0);
        for lat in [1u64, 3, 9, 27, 81, 243, 729] {
            s.record_latency(lat);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs
            .iter()
            .map(|&q| s.latency_percentile(q).unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{vals:?}");
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_above_one() {
        let mut s = NetStats::new(0);
        s.record_latency(1);
        let _ = s.latency_percentile(1.5);
    }

    #[test]
    fn utilization_math() {
        let mut s = NetStats::new(2);
        s.cycles = 100;
        s.link_busy[0] = 50;
        s.link_busy[1] = 100;
        assert!((s.avg_link_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.link_utilizations(), vec![0.5, 1.0]);
    }

    #[test]
    fn reset_preserves_link_count() {
        let mut s = NetStats::new(3);
        s.injected = 7;
        s.cycles = 9;
        s.reset();
        assert_eq!(s.injected, 0);
        assert_eq!(s.link_busy.len(), 3);
    }

    #[test]
    fn throughput_per_node() {
        let mut s = NetStats::new(0);
        s.delivered = 200;
        s.cycles = 100;
        assert!((s.throughput(4) - 0.5).abs() < 1e-12);
    }
}

// JSON bridge (canonical serialized form; field names feed sweep job
// hashes and snapshot state). Lives here rather than in `flumen-sweep`
// because the orphan rule keeps trait impls with the type they describe.
flumen_sim::json_struct!(NetStats {
    injected,
    delivered,
    latency_sum,
    latency_max,
    latency_hist,
    bits_injected,
    bit_hops,
    link_busy,
    reconfigurations,
    cycles,
});
