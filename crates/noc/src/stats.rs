//! Network statistics: latency, throughput, per-link utilization, and the
//! raw activity counts the energy model consumes.

/// Aggregated statistics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets handed to the network.
    pub injected: u64,
    /// Packet deliveries (a multicast counts once per destination).
    pub delivered: u64,
    /// Sum of end-to-end latencies (cycles) over deliveries.
    pub latency_sum: u64,
    /// Maximum delivery latency seen.
    pub latency_max: u64,
    /// Latency histogram in power-of-two buckets: bucket `i` counts
    /// deliveries with latency in `[2^i, 2^{i+1})` (bucket 0 holds 0–1).
    /// Cheap enough to keep always-on and sufficient for p50/p99.
    pub latency_hist: [u64; 24],
    /// Total bits injected.
    pub bits_injected: u64,
    /// Total bit·hops moved across links (electrical energy ∝ this).
    pub bit_hops: u64,
    /// Per-link busy cycles, indexed by link id (meaning is
    /// topology-specific; endpoint links for the photonic fabrics).
    pub link_busy: Vec<u64>,
    /// Fabric reconfigurations performed (MZIM only).
    pub reconfigurations: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl NetStats {
    /// Creates zeroed statistics with `links` utilization counters.
    pub fn new(links: usize) -> Self {
        NetStats {
            link_busy: vec![0; links],
            ..NetStats::default()
        }
    }

    /// Records one delivery latency into the aggregate counters.
    pub fn record_latency(&mut self, lat: u64) {
        self.delivered += 1;
        self.latency_sum += lat;
        self.latency_max = self.latency_max.max(lat);
        let bucket = (64 - lat.max(1).leading_zeros() as usize - 1).min(23);
        self.latency_hist[bucket] += 1;
    }

    /// Approximate latency percentile (upper edge of the histogram bucket
    /// containing the quantile). `None` before any delivery.
    ///
    /// # Panics
    ///
    /// Panics unless `q ∈ (0, 1]`.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.delivered == 0 {
            return None;
        }
        let target = (self.delivered as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(self.latency_max)
    }

    /// Mean end-to-end latency in cycles (`None` before any delivery).
    pub fn avg_latency(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.delivered as f64)
        }
    }

    /// Mean link utilization over the run, in `[0, 1]`.
    pub fn avg_link_utilization(&self) -> f64 {
        if self.cycles == 0 || self.link_busy.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.link_busy.iter().sum();
        busy as f64 / (self.cycles as f64 * self.link_busy.len() as f64)
    }

    /// Per-link utilizations in `[0, 1]`.
    pub fn link_utilizations(&self) -> Vec<f64> {
        if self.cycles == 0 {
            return vec![0.0; self.link_busy.len()];
        }
        self.link_busy
            .iter()
            .map(|&b| b as f64 / self.cycles as f64)
            .collect()
    }

    /// Delivered throughput in packets per node per cycle.
    pub fn throughput(&self, nodes: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delivered as f64 / (self.cycles as f64 * nodes as f64)
    }

    /// Clears counters while keeping the link vector size (used at the end
    /// of warmup so measurements exclude transient state).
    pub fn reset(&mut self) {
        let links = self.link_busy.len();
        *self = NetStats::new(links);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_none_when_empty() {
        assert_eq!(NetStats::new(4).avg_latency(), None);
    }

    #[test]
    fn avg_latency_mean() {
        let mut s = NetStats::new(0);
        s.delivered = 4;
        s.latency_sum = 100;
        assert_eq!(s.avg_latency(), Some(25.0));
    }

    #[test]
    fn record_latency_updates_everything() {
        let mut s = NetStats::new(0);
        s.record_latency(5);
        s.record_latency(100);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.latency_sum, 105);
        assert_eq!(s.latency_max, 100);
        assert_eq!(s.avg_latency(), Some(52.5));
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut s = NetStats::new(0);
        // 99 fast deliveries (~4 cycles), one slow (~1000).
        for _ in 0..99 {
            s.record_latency(4);
        }
        s.record_latency(1000);
        let p50 = s.latency_percentile(0.5).unwrap();
        let p99 = s.latency_percentile(0.99).unwrap();
        let p100 = s.latency_percentile(1.0).unwrap();
        assert!(p50 <= 8, "p50 bucket {p50}");
        assert!(p99 <= 8, "p99 still in the fast bucket: {p99}");
        assert!(p100 >= 1000, "max bucket covers the straggler: {p100}");
        assert_eq!(NetStats::new(0).latency_percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_zero() {
        let _ = NetStats::new(0).latency_percentile(0.0);
    }

    #[test]
    fn utilization_math() {
        let mut s = NetStats::new(2);
        s.cycles = 100;
        s.link_busy[0] = 50;
        s.link_busy[1] = 100;
        assert!((s.avg_link_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.link_utilizations(), vec![0.5, 1.0]);
    }

    #[test]
    fn reset_preserves_link_count() {
        let mut s = NetStats::new(3);
        s.injected = 7;
        s.cycles = 9;
        s.reset();
        assert_eq!(s.injected, 0);
        assert_eq!(s.link_busy.len(), 3);
    }

    #[test]
    fn throughput_per_node() {
        let mut s = NetStats::new(0);
        s.delivered = 200;
        s.cycles = 100;
        assert!((s.throughput(4) - 0.5).abs() < 1e-12);
    }
}
