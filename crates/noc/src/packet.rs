//! Packets moving through the network-on-package.

/// A network packet.
///
/// The simulator is packet-switched with per-hop serialization: a packet of
/// `bits` occupies a link for `ceil(bits / link_bits_per_cycle)` cycles,
/// which reproduces wormhole-like bandwidth contention without tracking
/// individual flits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id, assigned by the creator.
    pub id: u64,
    /// Source node.
    pub src: usize,
    /// Destination node (for multicast see [`Packet::extra_dests`]).
    pub dst: usize,
    /// Payload + header size in bits.
    pub bits: u32,
    /// Cycle at which the packet was created (latency is measured from
    /// here, so source queueing during saturation is included).
    pub created_at: u64,
    /// Additional multicast destinations (empty for unicast). Only the
    /// photonic fabrics deliver these natively; electrical networks
    /// replicate the packet at injection.
    pub extra_dests: Vec<usize>,
    /// Free-form tag for the system simulator (e.g. request/reply
    /// matching). The network never interprets it.
    pub tag: u64,
}

impl Packet {
    /// Creates a unicast packet.
    pub fn new(id: u64, src: usize, dst: usize, bits: u32, created_at: u64) -> Self {
        Packet {
            id,
            src,
            dst,
            bits,
            created_at,
            extra_dests: Vec::new(),
            tag: 0,
        }
    }

    /// Creates a multicast packet; `dsts` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty.
    pub fn multicast(id: u64, src: usize, dsts: &[usize], bits: u32, created_at: u64) -> Self {
        assert!(!dsts.is_empty(), "multicast needs at least one destination");
        Packet {
            id,
            src,
            dst: dsts[0],
            bits,
            created_at,
            extra_dests: dsts[1..].to_vec(),
            tag: 0,
        }
    }

    /// All destinations (primary plus extras).
    pub fn dests(&self) -> Vec<usize> {
        let mut d = Vec::with_capacity(1 + self.extra_dests.len());
        d.push(self.dst);
        d.extend_from_slice(&self.extra_dests);
        d
    }

    /// Whether this packet has more than one destination.
    pub fn is_multicast(&self) -> bool {
        !self.extra_dests.is_empty()
    }

    /// Serialization time over a link moving `bits_per_cycle` bits per
    /// cycle (at least 1 cycle).
    pub fn ser_cycles(&self, bits_per_cycle: u32) -> u64 {
        (self.bits as u64)
            .div_ceil(bits_per_cycle.max(1) as u64)
            .max(1)
    }
}

/// A delivered packet together with its delivery metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The packet (with `dst` set to the node that received it).
    pub packet: Packet,
    /// Cycle of delivery.
    pub at: u64,
}

impl Delivery {
    /// End-to-end latency in cycles (creation to delivery).
    pub fn latency(&self) -> u64 {
        self.at.saturating_sub(self.packet.created_at)
    }
}

// Canonical JSON bridge for checkpoints. `id` uses the full 64-bit range
// (electrical multicast replicas fold a replica index into the top bits),
// which `Json::Num`'s f64 cannot hold exactly — so it rides as hex.
impl flumen_sim::ToJson for Packet {
    fn to_json(&self) -> flumen_sim::Json {
        flumen_sim::Json::obj([
            ("bits", self.bits.to_json()),
            ("created_at", self.created_at.to_json()),
            ("dst", self.dst.to_json()),
            ("extra_dests", self.extra_dests.to_json()),
            ("id", flumen_sim::json::u64_hex(self.id)),
            ("src", self.src.to_json()),
            ("tag", self.tag.to_json()),
        ])
    }
}

impl flumen_sim::FromJson for Packet {
    fn from_json(j: &flumen_sim::Json) -> Result<Self, flumen_sim::JsonError> {
        Ok(Packet {
            id: flumen_sim::json::u64_from_hex(j.get("id")?)?,
            src: usize::from_json(j.get("src")?)?,
            dst: usize::from_json(j.get("dst")?)?,
            bits: u32::from_json(j.get("bits")?)?,
            created_at: u64::from_json(j.get("created_at")?)?,
            extra_dests: Vec::from_json(j.get("extra_dests")?)?,
            tag: u64::from_json(j.get("tag")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ser_cycles_rounds_up() {
        let p = Packet::new(1, 0, 1, 512, 0);
        assert_eq!(p.ser_cycles(256), 2);
        assert_eq!(p.ser_cycles(320), 2);
        assert_eq!(p.ser_cycles(512), 1);
        assert_eq!(p.ser_cycles(1024), 1);
    }

    #[test]
    fn ser_cycles_minimum_one() {
        let p = Packet::new(1, 0, 1, 8, 0);
        assert_eq!(p.ser_cycles(1024), 1);
    }

    #[test]
    fn multicast_dests() {
        let p = Packet::multicast(1, 0, &[3, 5, 7], 512, 0);
        assert!(p.is_multicast());
        assert_eq!(p.dests(), vec![3, 5, 7]);
        let u = Packet::new(2, 0, 4, 512, 0);
        assert!(!u.is_multicast());
        assert_eq!(u.dests(), vec![4]);
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn empty_multicast_panics() {
        let _ = Packet::multicast(1, 0, &[], 512, 0);
    }

    #[test]
    fn delivery_latency() {
        let p = Packet::new(1, 0, 1, 512, 10);
        let d = Delivery { packet: p, at: 25 };
        assert_eq!(d.latency(), 15);
    }
}
