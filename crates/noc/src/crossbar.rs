//! The Flumen MZIM interconnect as a network (paper Fig. 10d).
//!
//! Once an optical signal enters the mesh it propagates unimpeded to the
//! photodetector, so at the network level the fabric behaves like a
//! **non-blocking crossbar** with a centralized wavefront arbiter (the MZIM
//! control unit, paper §3.4). Establishing a new input→output connection
//! reprograms MZI phases, which costs about 1 ns ≈ 3 core cycles; holding an
//! existing connection costs nothing. Multicast is physical: one input
//! splits to many outputs in a single transmission.
//!
//! Wire ranges can be *reserved* for compute partitions
//! ([`MzimCrossbar::reserve_wires`]): reserved endpoints neither send nor
//! receive, which is exactly the network-side effect of Algorithm 1 carving
//! a compute partition out of the fabric.

use crate::fabric::{Fifo, FlightBuffer};
use crate::packet::{Delivery, Packet};
use crate::stats::NetStats;
use crate::wavefront::WavefrontArbiter;
use crate::{Network, NocError, Result};
use flumen_trace::{EventKind, TraceCategory, TraceEvent, TraceHandle};

/// Tuning parameters for the MZIM crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarConfig {
    /// Per-endpoint bandwidth, bits per core cycle (64 λ × 10 Gbps at
    /// 2.5 GHz = 256 bits/cycle).
    pub bits_per_cycle: u32,
    /// Phase-programming time for a new connection, cycles
    /// (1 ns ≈ 3 cycles at 2.5 GHz, Table 2 / §4.1).
    pub reconfig_cycles: u64,
    /// E/O + time-of-flight + O/E latency, cycles.
    pub port_latency: u64,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            bits_per_cycle: 256,
            reconfig_cycles: 3,
            port_latency: 2,
        }
    }
}

/// The Flumen MZIM fabric viewed as a non-blocking crossbar network.
#[derive(Debug)]
pub struct MzimCrossbar {
    nodes: usize,
    cfg: CrossbarConfig,
    /// Virtual output queues: `voq[i][j]` holds input `i`'s packets for
    /// output `j` (eliminates head-of-line blocking, as in the control
    /// unit's per-endpoint request buffers).
    voq: Vec<Vec<Fifo<Packet>>>,
    /// Multicast packets queue separately per input and are served first.
    mcast_queues: Vec<Fifo<Packet>>,
    arb: WavefrontArbiter,
    in_busy_until: Vec<u64>,
    out_busy_until: Vec<u64>,
    /// Last output each input was connected to (for reconfig charging).
    last_config: Vec<Option<usize>>,
    /// Wires reserved for compute partitions.
    reserved: Vec<bool>,
    in_flight: FlightBuffer<Packet>,
    cycle: u64,
    stats: NetStats,
    tracer: TraceHandle,
}

impl MzimCrossbar {
    /// Builds an `n`-endpoint MZIM crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidTopology`] for fewer than 2 endpoints.
    pub fn new(nodes: usize, cfg: CrossbarConfig) -> Result<Self> {
        if nodes < 2 {
            return Err(NocError::InvalidTopology {
                reason: "crossbar needs ≥ 2 nodes".into(),
            });
        }
        Ok(MzimCrossbar {
            nodes,
            cfg,
            voq: (0..nodes)
                .map(|_| (0..nodes).map(|_| Fifo::unbounded()).collect())
                .collect(),
            mcast_queues: (0..nodes).map(|_| Fifo::unbounded()).collect(),
            arb: WavefrontArbiter::new(nodes),
            in_busy_until: vec![0; nodes],
            out_busy_until: vec![0; nodes],
            last_config: vec![None; nodes],
            reserved: vec![false; nodes],
            in_flight: FlightBuffer::new(),
            cycle: 0,
            stats: NetStats::new(nodes),
            tracer: TraceHandle::disabled(),
        })
    }

    /// The 16-endpoint, 64-λ configuration from the paper.
    pub fn flumen_16() -> Self {
        // flumen-check: allow(no-panic-hot-path) — fixed paper shape, valid by construction
        MzimCrossbar::new(16, CrossbarConfig::default()).expect("16-node crossbar is valid")
    }

    /// Reserves endpoints for a compute partition: they stop sending and
    /// receiving until released. Traffic already queued stays queued.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNode`] for out-of-range wires.
    pub fn reserve_wires(&mut self, wires: &[usize]) -> Result<()> {
        for &w in wires {
            if w >= self.nodes {
                return Err(NocError::InvalidNode {
                    node: w,
                    nodes: self.nodes,
                });
            }
        }
        let now = self.cycle;
        for &w in wires {
            self.reserved[w] = true;
            self.tracer
                .emit(|| TraceEvent::instant(TraceCategory::Noc, "wire_reserve", now, w as u32));
        }
        Ok(())
    }

    /// Releases previously reserved endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidNode`] for out-of-range wires.
    pub fn release_wires(&mut self, wires: &[usize]) -> Result<()> {
        for &w in wires {
            if w >= self.nodes {
                return Err(NocError::InvalidNode {
                    node: w,
                    nodes: self.nodes,
                });
            }
        }
        let now = self.cycle;
        for &w in wires {
            self.reserved[w] = false;
            self.tracer
                .emit(|| TraceEvent::instant(TraceCategory::Noc, "wire_release", now, w as u32));
        }
        Ok(())
    }

    /// Which endpoints are currently reserved for compute.
    pub fn reserved_wires(&self) -> Vec<usize> {
        (0..self.nodes).filter(|&w| self.reserved[w]).collect()
    }

    /// Request-buffer occupancies per input — the MZIM control unit's
    /// buffer state used for the β utilization estimate (Algorithm 1).
    pub fn queue_depths(&self) -> Vec<usize> {
        (0..self.nodes)
            .map(|i| self.voq[i].iter().map(Fifo::len).sum::<usize>() + self.mcast_queues[i].len())
            .collect()
    }

    /// Starts transmitting a packet from input `input` (already dequeued).
    fn start(&mut self, input: usize, pkt: Packet, now: u64) {
        let dests = pkt.dests();
        let ser = pkt.ser_cycles(self.cfg.bits_per_cycle);
        // Reconfiguration charge: new unicast path, or any multicast tree.
        let reconf = if dests.len() == 1 && self.last_config[input] == Some(dests[0]) {
            0
        } else {
            self.stats.reconfigurations += 1;
            self.tracer.emit(|| {
                TraceEvent::instant(TraceCategory::Noc, "reconfig", now, input as u32)
                    .with_id(pkt.id)
                    .with_arg("ndest", dests.len() as f64)
            });
            self.cfg.reconfig_cycles
        };
        self.last_config[input] = if dests.len() == 1 {
            Some(dests[0])
        } else {
            None
        };
        let busy = now + reconf + ser;
        self.in_busy_until[input] = busy;
        for &d in &dests {
            self.out_busy_until[d] = busy;
        }
        self.stats.link_busy[input] += reconf + ser;
        self.stats.bit_hops += pkt.bits as u64;
        #[cfg(feature = "deep-trace")]
        {
            let occ = self.stats.link_busy[input];
            self.tracer.emit(|| {
                TraceEvent::new(
                    TraceCategory::Noc,
                    "link_busy",
                    EventKind::Counter(occ as f64),
                    now,
                    input as u32,
                )
            });
        }
        self.in_flight.push(busy + self.cfg.port_latency, pkt);
    }
}

impl Network for MzimCrossbar {
    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn inject(&mut self, pkt: Packet) {
        self.stats.injected += 1;
        self.stats.bits_injected += pkt.bits as u64;
        let now = self.cycle;
        self.tracer.emit(|| {
            TraceEvent::new(
                TraceCategory::Noc,
                "pkt",
                EventKind::AsyncBegin,
                now,
                pkt.src as u32,
            )
            .with_id(pkt.id)
            .with_arg("ndest", pkt.dests().len() as f64)
            .with_arg("bits", pkt.bits as f64)
        });
        if pkt.is_multicast() {
            self.mcast_queues[pkt.src].push_back(pkt);
        } else {
            let (src, dst) = (pkt.src, pkt.dst);
            self.voq[src][dst].push_back(pkt);
        }
    }

    fn step(&mut self) -> Vec<Delivery> {
        let now = self.cycle;
        // Multicast heads first (they need several outputs at once).
        for i in 0..self.nodes {
            if self.reserved[i] || self.in_busy_until[i] > now {
                continue;
            }
            let ready = self.mcast_queues[i].front().is_some_and(|p| {
                !p.dests()
                    .iter()
                    .any(|&d| self.out_busy_until[d] > now || self.reserved[d])
            });
            if !ready {
                continue;
            }
            if let Some(pkt) = self.mcast_queues[i].pop_front() {
                self.start(i, pkt, now);
            }
        }
        // Unicast VOQs via the wavefront arbiter: each input requests every
        // output it has traffic for.
        let requests: Vec<Vec<usize>> = (0..self.nodes)
            .map(|i| {
                if self.reserved[i] || self.in_busy_until[i] > now {
                    return Vec::new();
                }
                (0..self.nodes)
                    .filter(|&j| !self.voq[i][j].is_empty() && !self.reserved[j])
                    .collect()
            })
            .collect();
        let row_busy: Vec<bool> = (0..self.nodes)
            .map(|i| self.in_busy_until[i] > now || self.reserved[i])
            .collect();
        let col_busy: Vec<bool> = (0..self.nodes)
            .map(|o| self.out_busy_until[o] > now || self.reserved[o])
            .collect();
        let grants = self.arb.arbitrate(&requests, &row_busy, &col_busy);
        for (i, g) in grants.iter().enumerate() {
            if let Some(j) = g {
                if let Some(pkt) = self.voq[i][*j].pop_front() {
                    self.start(i, pkt, now);
                }
            }
        }
        // Deliveries.
        let mut deliveries = Vec::new();
        let Self {
            in_flight,
            stats,
            tracer,
            ..
        } = self;
        in_flight.drain_due(now, |pkt| {
            for d in pkt.dests() {
                let lat = now.saturating_sub(pkt.created_at);
                stats.record_latency(lat);
                tracer.emit(|| {
                    TraceEvent::new(
                        TraceCategory::Noc,
                        "pkt",
                        EventKind::AsyncEnd,
                        now,
                        d as u32,
                    )
                    .with_id(pkt.id)
                    .with_arg("lat", lat as f64)
                });
                let mut p = pkt.clone();
                p.dst = d;
                p.extra_dests.clear();
                deliveries.push(Delivery { packet: p, at: now });
            }
        });
        self.cycle += 1;
        self.stats.cycles += 1;
        deliveries
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn pending(&self) -> usize {
        self.queue_depths().iter().sum::<usize>() + self.in_flight.len()
    }
}

// Checkpoint support: every field that evolves during simulation.
// `in_flight` is serialized in its exact Vec order — the delivery loop
// scans with `swap_remove`, so delivery order (and therefore downstream
// RNG/stat sequences) depends on element positions, not just contents.
impl flumen_sim::Snapshotable for MzimCrossbar {
    fn snapshot(&self) -> flumen_sim::Json {
        use flumen_sim::ToJson;
        flumen_sim::Json::obj([
            ("arb_priority", self.arb.priority().to_json()),
            ("cycle", self.cycle.to_json()),
            ("in_busy_until", self.in_busy_until.to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("last_config", self.last_config.to_json()),
            ("mcast_queues", self.mcast_queues.to_json()),
            ("out_busy_until", self.out_busy_until.to_json()),
            ("reserved", self.reserved.to_json()),
            ("stats", self.stats.to_json()),
            ("voq", self.voq.to_json()),
        ])
    }

    fn restore(&mut self, j: &flumen_sim::Json) -> std::result::Result<(), flumen_sim::JsonError> {
        use flumen_sim::FromJson;
        self.arb
            .set_priority(usize::from_json(j.get("arb_priority")?)?);
        self.cycle = u64::from_json(j.get("cycle")?)?;
        self.in_busy_until = Vec::from_json(j.get("in_busy_until")?)?;
        self.in_flight = FlightBuffer::from_json(j.get("in_flight")?)?;
        self.last_config = Vec::from_json(j.get("last_config")?)?;
        self.mcast_queues = Vec::from_json(j.get("mcast_queues")?)?;
        self.out_busy_until = Vec::from_json(j.get("out_busy_until")?)?;
        self.reserved = Vec::from_json(j.get("reserved")?)?;
        self.stats = NetStats::from_json(j.get("stats")?)?;
        self.voq = Vec::from_json(j.get("voq")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut MzimCrossbar, cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            out.extend(net.step());
        }
        out
    }

    #[test]
    fn delivers_point_to_point() {
        let mut net = MzimCrossbar::flumen_16();
        net.inject(Packet::new(1, 2, 9, 512, 0));
        let got = drain(&mut net, 50);
        assert_eq!(got.len(), 1);
        // reconfig 3 + ser 2 + port 2 = 7 cycles.
        assert!(got[0].latency() <= 8, "{}", got[0].latency());
    }

    #[test]
    fn non_blocking_parallel_transfers() {
        let mut net = MzimCrossbar::flumen_16();
        // A full permutation: all 16 transfers complete in one round.
        for s in 0..16 {
            net.inject(Packet::new(s as u64, s, (s + 5) % 16, 512, 0));
        }
        let got = drain(&mut net, 20);
        assert_eq!(got.len(), 16);
        let max_at = got.iter().map(|d| d.at).max().unwrap();
        assert!(
            max_at <= 10,
            "all transfers should overlap, last at {max_at}"
        );
    }

    #[test]
    fn repeated_path_skips_reconfiguration() {
        let mut net = MzimCrossbar::flumen_16();
        net.inject(Packet::new(1, 0, 5, 512, 0));
        drain(&mut net, 20);
        let reconf_after_first = net.stats().reconfigurations;
        net.inject(Packet::new(2, 0, 5, 512, net.cycle()));
        drain(&mut net, 20);
        assert_eq!(net.stats().reconfigurations, reconf_after_first);
        // A different destination forces a reconfiguration.
        net.inject(Packet::new(3, 0, 6, 512, net.cycle()));
        drain(&mut net, 20);
        assert_eq!(net.stats().reconfigurations, reconf_after_first + 1);
    }

    #[test]
    fn physical_multicast_counts_one_transmission() {
        let mut net = MzimCrossbar::flumen_16();
        net.inject(Packet::multicast(1, 0, &[3, 7, 11, 15], 512, 0));
        let got = drain(&mut net, 30);
        assert_eq!(got.len(), 4);
        assert_eq!(net.stats().bit_hops, 512);
        assert_eq!(net.stats().injected, 1);
    }

    #[test]
    fn trace_multicast_one_begin_many_ends() {
        use flumen_trace::RecordingTracer;
        let rec = RecordingTracer::new();
        let mut net = MzimCrossbar::flumen_16();
        net.set_tracer(rec.handle());
        net.inject(Packet::multicast(1, 0, &[3, 7, 11, 15], 512, 0));
        drain(&mut net, 30);
        let evs = rec.events();
        let begins: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == EventKind::AsyncBegin)
            .collect();
        assert_eq!(begins.len(), 1, "physical multicast is one transmission");
        assert_eq!(begins[0].arg("ndest"), Some(4.0));
        let ends = evs.iter().filter(|e| e.kind == EventKind::AsyncEnd).count();
        assert_eq!(ends, 4);
        assert!(evs.iter().any(|e| e.name == "reconfig"));
        assert_eq!(flumen_trace::invariants::packet_conservation(&evs), Ok(1));
    }

    #[test]
    fn output_contention_serializes() {
        let mut net = MzimCrossbar::flumen_16();
        for s in 0..4 {
            net.inject(Packet::new(s as u64, s, 9, 512, 0));
        }
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 4);
        let mut ats: Vec<u64> = got.iter().map(|d| d.at).collect();
        ats.sort_unstable();
        // Each needs reconfig(3)+ser(2): arrivals separated by ≥ 5 cycles.
        for w in ats.windows(2) {
            assert!(w[1] - w[0] >= 5, "{ats:?}");
        }
    }

    #[test]
    fn reserved_wires_block_traffic() {
        let mut net = MzimCrossbar::flumen_16();
        net.reserve_wires(&[8, 9, 10, 11]).unwrap();
        net.inject(Packet::new(1, 8, 0, 512, 0)); // reserved source
        net.inject(Packet::new(2, 0, 9, 512, 0)); // reserved destination
        net.inject(Packet::new(3, 1, 2, 512, 0)); // unaffected
        let got = drain(&mut net, 50);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.id, 3);
        // Release and the stuck packets flow.
        net.release_wires(&[8, 9, 10, 11]).unwrap();
        let got2 = drain(&mut net, 50);
        assert_eq!(got2.len(), 2);
    }

    #[test]
    fn reserve_validates_range() {
        let mut net = MzimCrossbar::flumen_16();
        assert!(net.reserve_wires(&[99]).is_err());
        assert!(net.release_wires(&[99]).is_err());
    }

    #[test]
    fn queue_depths_reflect_backlog() {
        let mut net = MzimCrossbar::flumen_16();
        for k in 0..5 {
            net.inject(Packet::new(k, 3, 4, 512, 0));
        }
        assert_eq!(net.queue_depths()[3], 5);
        drain(&mut net, 100);
        assert_eq!(net.queue_depths()[3], 0);
    }

    #[test]
    fn sustains_high_uniform_load() {
        use crate::traffic::{BernoulliInjector, TrafficPattern};
        use rand::SeedableRng;
        let mut net = MzimCrossbar::flumen_16();
        // 1024-bit packets amortize the 3-cycle reconfiguration; offered
        // 0.3 of link bandwidth is well below the ~0.55 saturation point.
        let mut inj = BernoulliInjector::new(0.3, 1024, 256, TrafficPattern::UniformRandom);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for c in 0..5000u64 {
            for p in inj.generate(16, c, &mut rng) {
                net.inject(p);
            }
            net.step();
        }
        // Below saturation the backlog stays bounded.
        assert!(net.pending() < 200, "pending {}", net.pending());
        let avg = net.stats().avg_latency().unwrap();
        assert!(avg < 60.0, "avg latency {avg}");
    }
}
