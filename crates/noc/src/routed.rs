//! Electrical packet-switched networks: bidirectional ring and 2-D mesh
//! (paper Fig. 10a/b).
//!
//! Cycle-level model: input-queued routers, round-robin port arbitration,
//! per-hop serialization over finite-bandwidth links, finite input buffers
//! with backpressure, and bubble flow control on the ring to avoid cyclic
//! buffer deadlock.

use crate::fabric::{Fifo, FlightBuffer, RrToken};
use crate::packet::{Delivery, Packet};
use crate::stats::NetStats;
use crate::{Network, NocError, Result};
use flumen_trace::{EventKind, TraceCategory, TraceEvent, TraceHandle};

/// Shape of a routed electrical network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedTopology {
    /// Bidirectional ring of `nodes` routers.
    Ring {
        /// Router count.
        nodes: usize,
    },
    /// `width × height` mesh with XY dimension-ordered routing.
    Mesh {
        /// Routers per row.
        width: usize,
        /// Rows.
        height: usize,
    },
}

impl RoutedTopology {
    /// Total router/endpoint count.
    pub fn nodes(&self) -> usize {
        match self {
            RoutedTopology::Ring { nodes } => *nodes,
            RoutedTopology::Mesh { width, height } => width * height,
        }
    }
}

/// Tuning parameters for a routed network.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedConfig {
    /// Link bandwidth in bits per core cycle (Table 1: 800 Gbps at 2.5 GHz
    /// = 320 bits/cycle).
    pub link_bits_per_cycle: u32,
    /// Router pipeline delay per hop, cycles.
    pub router_delay: u64,
    /// Wire/time-of-flight latency per hop, cycles.
    pub link_latency: u64,
    /// Input buffer capacity per port, packets.
    pub input_queue_pkts: usize,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        RoutedConfig {
            link_bits_per_cycle: 320,
            router_delay: 2,
            link_latency: 1,
            input_queue_pkts: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct TimedPkt {
    pkt: Packet,
    ready_at: u64,
}

#[derive(Debug)]
struct Router {
    /// Input queues: one per neighbor in-port plus one local (last index).
    /// Capacity is enforced at the sender via the bubble rule, so the
    /// [`Fifo`]s stay unbounded and serialize like the raw queues.
    inputs: Vec<Fifo<TimedPkt>>,
    /// Output-port busy horizon (serialization), indexed like out ports.
    out_busy_until: Vec<u64>,
    /// Round-robin token over input ports.
    rr: RrToken,
}

/// An electrical ring or mesh NoP.
///
/// Built from the [`crate::fabric`] primitives with the exact cycle
/// behavior and checkpoint bytes of the original hand-wired version.
#[derive(Debug)]
pub struct RoutedNetwork {
    topo: RoutedTopology,
    cfg: RoutedConfig,
    routers: Vec<Router>,
    /// Unbounded per-node source queues (open-loop injection).
    src_queues: Vec<Fifo<Packet>>,
    /// Packets on the wire, tagged `(dest_router, dest_in_port, pkt)`.
    in_flight: FlightBuffer<(usize, usize, TimedPkt)>,
    cycle: u64,
    stats: NetStats,
    tracer: TraceHandle,
}

/// Out-port indices: neighbors first, local ejection last.
const EJECT: usize = usize::MAX;

impl RoutedNetwork {
    /// Builds a routed network.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidTopology`] for degenerate shapes.
    pub fn new(topo: RoutedTopology, cfg: RoutedConfig) -> Result<Self> {
        match topo {
            RoutedTopology::Ring { nodes } if nodes < 3 => {
                return Err(NocError::InvalidTopology {
                    reason: "ring needs ≥ 3 nodes".into(),
                })
            }
            RoutedTopology::Mesh { width, height } if width < 2 || height < 2 => {
                return Err(NocError::InvalidTopology {
                    reason: "mesh needs ≥ 2×2".into(),
                })
            }
            _ => {}
        }
        let n = topo.nodes();
        let ports = Self::neighbor_ports(&topo);
        let routers = (0..n)
            .map(|_| Router {
                inputs: (0..=ports).map(|_| Fifo::unbounded()).collect(),
                out_busy_until: vec![0; ports + 1],
                rr: RrToken::new(),
            })
            .collect();
        Ok(RoutedNetwork {
            topo,
            cfg,
            routers,
            src_queues: (0..n).map(|_| Fifo::unbounded()).collect(),
            in_flight: FlightBuffer::new(),
            cycle: 0,
            stats: NetStats::new(n * (ports + 1)),
            tracer: TraceHandle::disabled(),
        })
    }

    /// A 16-node ring with Table 1 parameters.
    ///
    /// # Panics
    ///
    /// Never panics for this fixed shape.
    pub fn ring_16() -> Self {
        RoutedNetwork::new(RoutedTopology::Ring { nodes: 16 }, RoutedConfig::default())
            // flumen-check: allow(no-panic-hot-path) — fixed 16-node shape, valid by construction
            .expect("16-node ring is valid")
    }

    /// A 4×4 mesh with Table 1 parameters.
    pub fn mesh_4x4() -> Self {
        RoutedNetwork::new(
            RoutedTopology::Mesh {
                width: 4,
                height: 4,
            },
            RoutedConfig::default(),
        )
        // flumen-check: allow(no-panic-hot-path) — fixed 4×4 shape, valid by construction
        .expect("4x4 mesh is valid")
    }

    fn neighbor_ports(topo: &RoutedTopology) -> usize {
        match topo {
            RoutedTopology::Ring { .. } => 2, // CW, CCW
            RoutedTopology::Mesh { .. } => 4, // E, W, N, S
        }
    }

    /// Output port toward `dst` from `at` (EJECT when `at == dst`).
    fn route(&self, at: usize, dst: usize) -> usize {
        if at == dst {
            return EJECT;
        }
        match self.topo {
            RoutedTopology::Ring { nodes } => {
                let fwd = (dst + nodes - at) % nodes;
                if fwd <= nodes / 2 {
                    0 // clockwise
                } else {
                    1 // counter-clockwise
                }
            }
            RoutedTopology::Mesh { width, .. } => {
                let (ax, ay) = (at % width, at / width);
                let (dx, dy) = (dst % width, dst / width);
                if ax < dx {
                    0 // east
                } else if ax > dx {
                    1 // west
                } else if ay < dy {
                    3 // south
                } else {
                    2 // north
                }
            }
        }
    }

    /// `(next_router, in_port_at_next)` over out port `p` from router `at`.
    fn link_endpoint(&self, at: usize, p: usize) -> (usize, usize) {
        match self.topo {
            RoutedTopology::Ring { nodes } => match p {
                0 => ((at + 1) % nodes, 1),         // CW arrives on the CCW-side port
                1 => ((at + nodes - 1) % nodes, 0), // CCW arrives on the CW-side port
                // flumen-check: allow(no-panic-hot-path) — p < neighbor_ports() == 2 by caller
                _ => unreachable!("ring has 2 neighbor ports"),
            },
            RoutedTopology::Mesh { width, .. } => match p {
                0 => (at + 1, 1),     // east, arrives on west port
                1 => (at - 1, 0),     // west
                2 => (at - width, 3), // north, arrives on south port
                3 => (at + width, 2), // south
                // flumen-check: allow(no-panic-hot-path) — p < neighbor_ports() == 4 by caller
                _ => unreachable!("mesh has 4 neighbor ports"),
            },
        }
    }

    fn link_id(&self, router: usize, port: usize) -> usize {
        let ports = Self::neighbor_ports(&self.topo) + 1;
        router * ports + port.min(ports - 1)
    }

    fn queue_len(&self, router: usize, port: usize) -> usize {
        self.routers[router].inputs[port].len()
    }

    /// Advances router `r`, moving at most one packet per input port.
    fn step_router(&mut self, r: usize) {
        let nports = self.routers[r].inputs.len();
        let local_port = nports - 1;
        let now = self.cycle;
        let start = self.routers[r].rr.pos();
        for k in 0..nports {
            let in_port = (start + k) % nports;
            let Some(head) = self.routers[r].inputs[in_port].front() else {
                continue;
            };
            if head.ready_at > now {
                continue;
            }
            let dst = head.pkt.dst;
            let out = self.route(r, dst);
            if out == EJECT {
                // One ejection per cycle through the local out port.
                let eject_port = local_port;
                if self.routers[r].out_busy_until[eject_port] > now {
                    continue;
                }
                let Some(tp) = self.routers[r].inputs[in_port].pop_front() else {
                    continue;
                };
                self.routers[r].out_busy_until[eject_port] = now + 1;
                self.in_flight.push(now + 1, (r, usize::MAX, tp));
                continue;
            }
            if self.routers[r].out_busy_until[out] > now {
                continue;
            }
            let (next, next_in) = self.link_endpoint(r, out);
            // Backpressure: bubble flow control needs one spare slot for
            // through-traffic and two for injections (prevents ring
            // deadlock; harmless on the mesh).
            let spare_needed = if in_port == local_port { 2 } else { 1 };
            if self.queue_len(next, next_in) + spare_needed > self.cfg.input_queue_pkts {
                continue;
            }
            let Some(mut tp) = self.routers[r].inputs[in_port].pop_front() else {
                continue;
            };
            let ser = tp.pkt.ser_cycles(self.cfg.link_bits_per_cycle);
            self.routers[r].out_busy_until[out] = now + ser;
            let lid = self.link_id(r, out);
            self.stats.link_busy[lid] += ser;
            self.stats.bit_hops += tp.pkt.bits as u64;
            #[cfg(feature = "deep-trace")]
            {
                let busy = self.stats.link_busy[lid];
                self.tracer.emit(|| {
                    TraceEvent::new(
                        TraceCategory::Noc,
                        "link_busy",
                        EventKind::Counter(busy as f64),
                        now,
                        lid as u32,
                    )
                });
            }
            tp.ready_at = now + ser + self.cfg.link_latency + self.cfg.router_delay;
            self.in_flight
                .push(now + ser + self.cfg.link_latency, (next, next_in, tp));
        }
        self.routers[r].rr.rotate(nports);
    }
}

impl Network for RoutedNetwork {
    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn num_nodes(&self) -> usize {
        self.topo.nodes()
    }

    fn inject(&mut self, pkt: Packet) {
        // Electrical networks replicate multicasts at the source; each
        // replica gets its own id and its own trace span.
        if pkt.is_multicast() {
            for (i, d) in pkt.dests().into_iter().enumerate() {
                let mut p = pkt.clone();
                p.dst = d;
                p.extra_dests.clear();
                p.id = pkt.id.wrapping_add((i as u64) << 48);
                self.inject(p);
            }
            return;
        }
        self.stats.injected += 1;
        self.stats.bits_injected += pkt.bits as u64;
        let now = self.cycle;
        self.tracer.emit(|| {
            TraceEvent::new(
                TraceCategory::Noc,
                "pkt",
                EventKind::AsyncBegin,
                now,
                pkt.src as u32,
            )
            .with_id(pkt.id)
            .with_arg("ndest", 1.0)
            .with_arg("bits", pkt.bits as f64)
        });
        self.src_queues[pkt.src].push_back(pkt);
    }

    fn step(&mut self) -> Vec<Delivery> {
        let now = self.cycle;
        // Move source-queue heads into the local input port.
        for node in 0..self.num_nodes() {
            let local = self.routers[node].inputs.len() - 1;
            if self.routers[node].inputs[local].len() < self.cfg.input_queue_pkts {
                if let Some(pkt) = self.src_queues[node].pop_front() {
                    self.routers[node].inputs[local].push_back(TimedPkt { pkt, ready_at: now });
                }
            }
        }
        for r in 0..self.routers.len() {
            self.step_router(r);
        }
        // Deliver / hand over arrivals that are due.
        let mut deliveries = Vec::new();
        let Self {
            in_flight,
            routers,
            stats,
            tracer,
            ..
        } = self;
        in_flight.drain_due(now, |(node, in_port, tp)| {
            if in_port == usize::MAX {
                let lat = now.saturating_sub(tp.pkt.created_at);
                stats.record_latency(lat);
                tracer.emit(|| {
                    TraceEvent::new(
                        TraceCategory::Noc,
                        "pkt",
                        EventKind::AsyncEnd,
                        now,
                        node as u32,
                    )
                    .with_id(tp.pkt.id)
                    .with_arg("lat", lat as f64)
                });
                deliveries.push(Delivery {
                    packet: tp.pkt,
                    at: now,
                });
            } else {
                routers[node].inputs[in_port].push_back(tp);
            }
        });
        self.cycle += 1;
        self.stats.cycles += 1;
        deliveries
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn pending(&self) -> usize {
        self.src_queues.iter().map(|q| q.len()).sum::<usize>()
            + self.in_flight.len()
            + self
                .routers
                .iter()
                .map(|r| r.inputs.iter().map(|q| q.len()).sum::<usize>())
                .sum::<usize>()
    }
}

flumen_sim::json_struct!(TimedPkt { pkt, ready_at });
flumen_sim::json_struct!(Router {
    inputs,
    out_busy_until,
    rr
});

// Checkpoint support. `in_flight` entries are `(arrival, router, in_port,
// pkt)`; the in-port is `usize::MAX` for ejections, beyond f64's exact
// integer range, so it rides as hex. Vec order is preserved — the arrival
// scan uses `swap_remove`, making delivery order position-dependent.
impl flumen_sim::Snapshotable for RoutedNetwork {
    fn snapshot(&self) -> flumen_sim::Json {
        use flumen_sim::ToJson;
        let in_flight = flumen_sim::Json::Arr(
            self.in_flight
                .entries()
                .iter()
                .map(|(at, (node, port, tp))| {
                    flumen_sim::Json::Arr(vec![
                        at.to_json(),
                        node.to_json(),
                        flumen_sim::json::u64_hex(*port as u64),
                        tp.to_json(),
                    ])
                })
                .collect(),
        );
        flumen_sim::Json::obj([
            ("cycle", self.cycle.to_json()),
            ("in_flight", in_flight),
            ("routers", self.routers.to_json()),
            ("src_queues", self.src_queues.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }

    fn restore(&mut self, j: &flumen_sim::Json) -> std::result::Result<(), flumen_sim::JsonError> {
        use flumen_sim::{FromJson, JsonError};
        self.cycle = u64::from_json(j.get("cycle")?)?;
        let mut in_flight = Vec::new();
        for e in j.get("in_flight")?.as_arr()? {
            let arr = e.as_arr()?;
            let [at, node, port, tp] = arr else {
                return Err(JsonError(format!(
                    "RoutedNetwork.in_flight: expected 4 elements, got {}",
                    arr.len()
                )));
            };
            in_flight.push((
                u64::from_json(at)?,
                (
                    usize::from_json(node)?,
                    flumen_sim::json::u64_from_hex(port)? as usize,
                    TimedPkt::from_json(tp)?,
                ),
            ));
        }
        self.in_flight = FlightBuffer::from_entries(in_flight);
        self.routers = Vec::from_json(j.get("routers")?)?;
        self.src_queues = Vec::from_json(j.get("src_queues")?)?;
        self.stats = NetStats::from_json(j.get("stats")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut RoutedNetwork, cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            out.extend(net.step());
        }
        out
    }

    #[test]
    fn ring_delivers_a_packet() {
        let mut net = RoutedNetwork::ring_16();
        net.inject(Packet::new(1, 0, 4, 512, 0));
        let got = drain(&mut net, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.dst, 4);
        assert!(got[0].latency() > 0);
    }

    #[test]
    fn ring_takes_shorter_direction() {
        // 0 -> 15 is one hop CCW; latency should be far less than 15 hops.
        let mut net = RoutedNetwork::ring_16();
        net.inject(Packet::new(1, 0, 15, 512, 0));
        let got = drain(&mut net, 200);
        let lat_short = got[0].latency();
        let mut net2 = RoutedNetwork::ring_16();
        net2.inject(Packet::new(2, 0, 8, 512, 0));
        let got2 = drain(&mut net2, 400);
        assert!(lat_short < got2[0].latency());
    }

    #[test]
    fn mesh_xy_routing_delivers() {
        let mut net = RoutedNetwork::mesh_4x4();
        for dst in 1..16 {
            net.inject(Packet::new(dst as u64, 0, dst, 512, 0));
        }
        let got = drain(&mut net, 500);
        assert_eq!(got.len(), 15);
        let mut seen: Vec<usize> = got.iter().map(|d| d.packet.dst).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..16).collect::<Vec<_>>());
    }

    #[test]
    fn mesh_farther_is_slower() {
        let mut near = RoutedNetwork::mesh_4x4();
        near.inject(Packet::new(1, 0, 1, 512, 0));
        let l_near = drain(&mut near, 200)[0].latency();
        let mut far = RoutedNetwork::mesh_4x4();
        far.inject(Packet::new(1, 0, 15, 512, 0));
        let l_far = drain(&mut far, 200)[0].latency();
        assert!(l_far > l_near, "{l_far} vs {l_near}");
    }

    #[test]
    fn trace_spans_cover_inject_to_eject() {
        use flumen_trace::RecordingTracer;
        let rec = RecordingTracer::new();
        let mut net = RoutedNetwork::ring_16();
        net.set_tracer(rec.handle());
        net.inject(Packet::multicast(1, 0, &[2, 4], 512, 0));
        drain(&mut net, 200);
        let evs = rec.events();
        let begins = evs
            .iter()
            .filter(|e| e.kind == EventKind::AsyncBegin)
            .count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::AsyncEnd).count();
        assert_eq!(begins, 2, "replicated multicast begins one span per copy");
        assert_eq!(ends, 2);
        assert_eq!(flumen_trace::invariants::packet_conservation(&evs), Ok(2));
    }

    #[test]
    fn multicast_is_replicated_on_electrical() {
        let mut net = RoutedNetwork::mesh_4x4();
        net.inject(Packet::multicast(1, 0, &[1, 2, 3], 512, 0));
        assert_eq!(net.stats().injected, 3);
        let got = drain(&mut net, 500);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn heavy_load_saturates_but_drains() {
        // Flood the ring, then stop injecting; everything must drain
        // (deadlock freedom via bubble flow control).
        let mut net = RoutedNetwork::ring_16();
        let mut id = 0u64;
        for c in 0..200u64 {
            for src in 0..16 {
                net.inject(Packet::new(id, src, (src + 8) % 16, 512, c));
                id += 1;
            }
            net.step();
        }
        for _ in 0..200_000 {
            net.step();
            if net.pending() == 0 {
                break;
            }
        }
        assert_eq!(net.pending(), 0, "network failed to drain");
        assert_eq!(net.stats().delivered, net.stats().injected);
    }

    #[test]
    fn utilization_counters_advance() {
        let mut net = RoutedNetwork::mesh_4x4();
        net.inject(Packet::new(1, 0, 15, 4096, 0));
        drain(&mut net, 300);
        assert!(net.stats().avg_link_utilization() > 0.0);
        assert!(net.stats().bit_hops >= 4096 * 6); // 6 hops minimum
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(
            RoutedNetwork::new(RoutedTopology::Ring { nodes: 2 }, RoutedConfig::default()).is_err()
        );
        assert!(RoutedNetwork::new(
            RoutedTopology::Mesh {
                width: 1,
                height: 4
            },
            RoutedConfig::default()
        )
        .is_err());
    }

    #[test]
    fn latency_grows_with_load() {
        use crate::traffic::{BernoulliInjector, TrafficPattern};
        use rand::SeedableRng;
        let mut lats = Vec::new();
        for rate in [0.05, 0.6] {
            let mut net = RoutedNetwork::ring_16();
            let mut inj = BernoulliInjector::new(rate, 512, 320, TrafficPattern::UniformRandom);
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            for c in 0..4000u64 {
                for p in inj.generate(16, c, &mut rng) {
                    net.inject(p);
                }
                net.step();
            }
            lats.push(net.stats().avg_latency().unwrap());
        }
        assert!(lats[1] > lats[0] * 1.5, "{lats:?}");
    }
}
