//! Measurement harness: warmup / measurement phases, latency-vs-load
//! sweeps and saturation detection (regenerates paper Fig. 11).
//!
//! The cycle loops here run on the `flumen-sim` kernel: a synthetic-traffic
//! driver implements [`flumen_sim::Component`] and the phase structure is
//! the shared [`SimPhase`] enum rather than hand-rolled `for` loops. The
//! RNG sequence is unchanged from the pre-kernel harness — one stream
//! seeded from [`RunConfig::seed`] spans warmup and measurement — so every
//! measured point is bit-identical to the legacy loops.
//!
//! Every entry point is generic over `N: Network + ?Sized`, so the same
//! harness drives hand-written fabrics, `&mut dyn Network` trait objects,
//! and combinator-composed fabrics from [`crate::fabric`] (e.g.
//! [`crate::torus`]) without adaptation.

use crate::traffic::{BernoulliInjector, TrafficPattern};
use crate::{Network, Packet};
use flumen_sim::{run_phase, run_until, Clock, Component, Cycles, SimCtx, SimPhase};

/// One measured operating point of a latency-load sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyPoint {
    /// Offered load, fraction of per-node link bandwidth.
    pub offered_load: f64,
    /// Mean packet latency in cycles (`f64::INFINITY` when saturated and
    /// nothing representative was delivered).
    pub avg_latency: f64,
    /// Delivered throughput, packets/node/cycle.
    pub throughput: f64,
    /// Mean link utilization in `[0, 1]`.
    pub link_utilization: f64,
    /// Whether the network failed to keep up with the offered load.
    pub saturated: bool,
}

/// Parameters for a measurement run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Warmup cycles excluded from statistics.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Packet size in bits.
    pub packet_bits: u32,
    /// Link bandwidth used to express load (bits/cycle).
    pub link_bits_per_cycle: u32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup: 2_000,
            measure: 10_000,
            // Multi-flit packets, as in typical Booksim evaluations; they
            // also amortize the MZIM reconfiguration cost.
            packet_bits: 1024,
            link_bits_per_cycle: 256,
            seed: 0xF1u64,
        }
    }
}

/// A network under synthetic load: injects Bernoulli traffic each cycle,
/// then steps the network. The kernel's shared [`SimCtx`] RNG drives
/// destination and injection draws.
struct TrafficDriver<'a, N: Network + ?Sized> {
    net: &'a mut N,
    inj: BernoulliInjector,
    n: usize,
}

impl<N: Network + ?Sized> Component for TrafficDriver<'_, N> {
    fn step(&mut self, now: Cycles, ctx: &mut SimCtx) {
        for p in self.inj.generate(self.n, now.value(), &mut ctx.rng) {
            self.net.inject(p);
        }
        self.net.step();
    }
    // Synthetic load never quiesces; phases are fixed windows.
}

/// Runs one offered-load point on a network.
pub fn measure_point<N: Network + ?Sized>(
    net: &mut N,
    pattern: TrafficPattern,
    offered_load: f64,
    cfg: &RunConfig,
) -> LatencyPoint {
    let n = net.num_nodes();
    let mut driver = TrafficDriver {
        net,
        inj: BernoulliInjector::new(
            offered_load,
            cfg.packet_bits,
            cfg.link_bits_per_cycle,
            pattern,
        ),
        n,
    };
    let mut ctx = SimCtx::new(cfg.seed);
    let mut clock = Clock::new();

    run_phase(
        SimPhase::Warmup,
        &mut driver,
        &mut ctx,
        &mut clock,
        Cycles::new(cfg.warmup),
    );
    driver.net.stats_mut().reset();
    let backlog_before = driver.net.pending();

    run_phase(
        SimPhase::Measure,
        &mut driver,
        &mut ctx,
        &mut clock,
        Cycles::new(cfg.measure),
    );

    let stats = driver.net.stats();
    let backlog_after = driver.net.pending();
    // Saturated when the backlog grows materially over the measured window.
    let saturated = backlog_after > backlog_before + (n * 8) || stats.avg_latency().is_none();
    LatencyPoint {
        offered_load,
        avg_latency: stats.avg_latency().unwrap_or(f64::INFINITY),
        throughput: stats.throughput(n),
        link_utilization: stats.avg_link_utilization(),
        saturated,
    }
}

/// Sweeps offered load over `loads` for a fresh network per point.
pub fn latency_load_sweep<F, N>(
    mut make_net: F,
    pattern: TrafficPattern,
    loads: &[f64],
    cfg: &RunConfig,
) -> Vec<LatencyPoint>
where
    F: FnMut() -> N,
    N: Network,
{
    loads
        .iter()
        .map(|&load| {
            let mut net = make_net();
            measure_point(&mut net, pattern, load, cfg)
        })
        .collect()
}

/// A network with no new injections, counting deliveries as in-flight
/// packets complete.
struct DrainDriver<'a, N: Network + ?Sized> {
    net: &'a mut N,
    delivered: u64,
}

impl<N: Network + ?Sized> Component for DrainDriver<'_, N> {
    fn step(&mut self, _now: Cycles, _ctx: &mut SimCtx) {
        self.delivered += self.net.step().len() as u64;
    }

    fn done(&self, _now: Cycles) -> bool {
        self.net.pending() == 0
    }
}

/// Steps the network until it drains (no pending packets) or `max_cycles`
/// elapse; returns the number of deliveries observed while draining.
/// Conservation-style tests run this after their injection phase so every
/// in-flight packet reaches its trace `AsyncEnd` before the stream is
/// checked.
pub fn drain<N: Network + ?Sized>(net: &mut N, max_cycles: u64) -> u64 {
    let mut driver = DrainDriver { net, delivered: 0 };
    let mut ctx = SimCtx::new(0);
    let mut clock = Clock::new();
    run_phase(
        SimPhase::Drain,
        &mut driver,
        &mut ctx,
        &mut clock,
        Cycles::new(max_cycles),
    );
    driver.delivered
}

/// A cycle-stamped packet schedule feeding a network: packets inject when
/// the *network's* clock reaches their `created_at` (the network may have
/// been pre-stepped, so its absolute cycle — not the kernel phase clock —
/// is the reference).
struct ScheduleDriver<'a, N: Network + ?Sized> {
    net: &'a mut N,
    schedule: Vec<Packet>,
    next: usize,
}

impl<N: Network + ?Sized> Component for ScheduleDriver<'_, N> {
    fn step(&mut self, _now: Cycles, _ctx: &mut SimCtx) {
        let due = self.net.cycle();
        while self.next < self.schedule.len() && self.schedule[self.next].created_at <= due {
            self.net.inject(self.schedule[self.next].clone());
            self.next += 1;
        }
        self.net.step();
    }

    fn done(&self, _now: Cycles) -> bool {
        self.next >= self.schedule.len() && self.net.pending() == 0
    }
}

/// Injects an explicit packet schedule (cycle-stamped) and runs until the
/// network drains or `max_cycles` elapse. Returns total cycles simulated.
/// Used by trace-driven studies (e.g. Fig. 1 link-utilization traces).
pub fn run_schedule<N: Network + ?Sized>(
    net: &mut N,
    mut schedule: Vec<Packet>,
    max_cycles: u64,
) -> u64 {
    schedule.sort_by_key(|p| p.created_at);
    let mut driver = ScheduleDriver {
        net,
        schedule,
        next: 0,
    };
    let mut ctx = SimCtx::new(0);
    let mut clock = Clock::new();
    let out = run_until(&mut driver, &mut ctx, &mut clock, Cycles::new(max_cycles));
    out.cycles.value()
}

// JSON bridges (canonical serialized form; field names feed sweep job
// hashes and result files).
flumen_sim::json_struct!(RunConfig {
    warmup,
    measure,
    packet_bits,
    link_bits_per_cycle,
    seed
});

flumen_sim::json_struct!(LatencyPoint {
    offered_load,
    avg_latency,
    throughput,
    link_utilization,
    saturated
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::OpticalBus;
    use crate::crossbar::MzimCrossbar;
    use crate::routed::RoutedNetwork;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            warmup: 500,
            measure: 3_000,
            ..RunConfig::default()
        }
    }

    #[test]
    fn low_load_latency_is_low_everywhere() {
        let cfg = quick_cfg();
        let p = measure_point(
            &mut MzimCrossbar::flumen_16(),
            TrafficPattern::UniformRandom,
            0.05,
            &cfg,
        );
        assert!(!p.saturated);
        assert!(p.avg_latency < 20.0, "{}", p.avg_latency);
    }

    #[test]
    fn latency_monotone_with_load_on_mesh() {
        let cfg = quick_cfg();
        let pts = latency_load_sweep(
            RoutedNetwork::mesh_4x4,
            TrafficPattern::UniformRandom,
            &[0.05, 0.3, 0.6],
            &cfg,
        );
        assert!(pts[0].avg_latency < pts[1].avg_latency);
        assert!(pts[1].avg_latency <= pts[2].avg_latency * 1.5);
    }

    #[test]
    fn ring_saturates_before_crossbar() {
        // Same absolute offered load (fraction of 256 bits/cycle) on both.
        let cfg = quick_cfg();
        let load = 0.5;
        let ring = measure_point(
            &mut RoutedNetwork::ring_16(),
            TrafficPattern::UniformRandom,
            load,
            &cfg,
        );
        let xbar = measure_point(
            &mut MzimCrossbar::flumen_16(),
            TrafficPattern::UniformRandom,
            load,
            &cfg,
        );
        assert!(!xbar.saturated, "crossbar saturated at load {load}");
        assert!(
            ring.saturated || ring.avg_latency > xbar.avg_latency,
            "ring {:.1} vs crossbar {:.1}",
            ring.avg_latency,
            xbar.avg_latency
        );
    }

    #[test]
    fn optbus_saturates_above_half_load() {
        let cfg = quick_cfg();
        let p = measure_point(
            &mut OpticalBus::optbus_16(),
            TrafficPattern::UniformRandom,
            0.8,
            &cfg,
        );
        assert!(p.saturated);
    }

    #[test]
    fn run_schedule_drains() {
        let mut net = MzimCrossbar::flumen_16();
        let schedule: Vec<Packet> = (0..64)
            .map(|k| Packet::new(k, (k % 16) as usize, ((k + 3) % 16) as usize, 512, k))
            .collect();
        let cycles = run_schedule(&mut net, schedule, 50_000);
        assert_eq!(net.pending(), 0);
        assert!(cycles < 50_000);
        assert_eq!(net.stats().delivered, 64);
    }
}
