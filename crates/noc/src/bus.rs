//! The optical bus NoP (paper Fig. 10c).
//!
//! Nodes share a small set of circular waveguides; a transmission claims a
//! whole bus for its serialization time (token-style arbitration,
//! round-robin over nodes). Because only `B` transmissions can be in flight
//! at once — versus `N` for the non-blocking MZIM crossbar — the bus shows
//! much earlier saturation under load (paper Fig. 11), and its worst-case
//! optical loss scales with `k·p` (paper Fig. 12a, [`crate::loss`] lives in
//! the photonics crate).
//!
//! Multicast is free: optical power on the shared waveguide reaches every
//! node's drop filters, so one transmission serves all destinations.

use crate::fabric::{Fifo, FlightBuffer, RrToken};
use crate::packet::{Delivery, Packet};
use crate::stats::NetStats;
use crate::{Network, NocError, Result};
use flumen_trace::{EventKind, TraceCategory, TraceEvent, TraceHandle};

/// Tuning parameters for an optical bus.
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfig {
    /// Number of shared waveguides (concurrent transmissions).
    pub buses: usize,
    /// Bandwidth of one bus, bits per core cycle (64 λ × 10 Gbps at
    /// 2.5 GHz = 256 bits/cycle).
    pub bus_bits_per_cycle: u32,
    /// One-way propagation + E/O + O/E latency, cycles.
    pub port_latency: u64,
    /// Arbitration (token) delay charged per grant, cycles.
    pub arbitration_delay: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        // Token circulation on the shared waveguide costs several cycles
        // per grant; the MZIM's centralized wavefront arbiter does not.
        BusConfig {
            buses: 8,
            bus_bits_per_cycle: 256,
            port_latency: 3,
            arbitration_delay: 4,
        }
    }
}

/// A shared-waveguide optical bus network.
///
/// Built from the [`crate::fabric`] primitives — [`Fifo`] source queues,
/// an [`RrToken`] for the circulating grant token, and a
/// [`FlightBuffer`] for transmissions on the waveguide — with the exact
/// cycle behavior and checkpoint bytes of the original hand-wired
/// implementation.
#[derive(Debug)]
pub struct OpticalBus {
    nodes: usize,
    cfg: BusConfig,
    src_queues: Vec<Fifo<Packet>>,
    bus_busy_until: Vec<u64>,
    rr: RrToken,
    in_flight: FlightBuffer<Packet>,
    cycle: u64,
    stats: NetStats,
    tracer: TraceHandle,
}

impl OpticalBus {
    /// Builds an optical bus network.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidTopology`] for zero nodes or buses.
    pub fn new(nodes: usize, cfg: BusConfig) -> Result<Self> {
        if nodes < 2 || cfg.buses == 0 {
            return Err(NocError::InvalidTopology {
                reason: "bus needs ≥ 2 nodes and ≥ 1 waveguide".into(),
            });
        }
        let buses = cfg.buses;
        Ok(OpticalBus {
            nodes,
            cfg,
            src_queues: (0..nodes).map(|_| Fifo::unbounded()).collect(),
            bus_busy_until: vec![0; buses],
            rr: RrToken::new(),
            in_flight: FlightBuffer::new(),
            cycle: 0,
            stats: NetStats::new(buses),
            tracer: TraceHandle::disabled(),
        })
    }

    /// The 16-node, 8-waveguide, 64-λ configuration used in the paper's
    /// comparisons (bisection ≈ 5.1 Tbps).
    pub fn optbus_16() -> Self {
        // flumen-check: allow(no-panic-hot-path) — fixed paper shape, valid by construction
        OpticalBus::new(16, BusConfig::default()).expect("default optbus is valid")
    }

    /// Current source-queue depths (for scheduler utilization estimates).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.src_queues.iter().map(|q| q.len()).collect()
    }
}

impl Network for OpticalBus {
    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn inject(&mut self, pkt: Packet) {
        self.stats.injected += 1;
        self.stats.bits_injected += pkt.bits as u64;
        let now = self.cycle;
        self.tracer.emit(|| {
            TraceEvent::new(
                TraceCategory::Noc,
                "pkt",
                EventKind::AsyncBegin,
                now,
                pkt.src as u32,
            )
            .with_id(pkt.id)
            .with_arg("ndest", pkt.dests().len() as f64)
            .with_arg("bits", pkt.bits as f64)
        });
        self.src_queues[pkt.src].push_back(pkt);
    }

    fn step(&mut self) -> Vec<Delivery> {
        let now = self.cycle;
        // Grant free buses to waiting nodes, round-robin.
        for b in 0..self.cfg.buses {
            if self.bus_busy_until[b] > now {
                continue;
            }
            // Scan nodes starting at the token position.
            for node in self.rr.scan(self.nodes) {
                if let Some(pkt) = self.src_queues[node].pop_front() {
                    let ser = pkt.ser_cycles(self.cfg.bus_bits_per_cycle);
                    let busy = now + self.cfg.arbitration_delay + ser;
                    self.bus_busy_until[b] = busy;
                    self.stats.link_busy[b] += ser + self.cfg.arbitration_delay;
                    self.stats.bit_hops += pkt.bits as u64;
                    #[cfg(feature = "deep-trace")]
                    {
                        let occ = self.stats.link_busy[b];
                        self.tracer.emit(|| {
                            TraceEvent::new(
                                TraceCategory::Noc,
                                "link_busy",
                                EventKind::Counter(occ as f64),
                                now,
                                b as u32,
                            )
                        });
                    }
                    self.in_flight.push(busy + self.cfg.port_latency, pkt);
                    self.rr.grant(node, self.nodes);
                    break;
                }
            }
        }
        // Deliveries.
        let mut deliveries = Vec::new();
        let Self {
            in_flight,
            stats,
            tracer,
            ..
        } = self;
        in_flight.drain_due(now, |pkt| {
            for d in pkt.dests() {
                let lat = now.saturating_sub(pkt.created_at);
                stats.record_latency(lat);
                tracer.emit(|| {
                    TraceEvent::new(
                        TraceCategory::Noc,
                        "pkt",
                        EventKind::AsyncEnd,
                        now,
                        d as u32,
                    )
                    .with_id(pkt.id)
                    .with_arg("lat", lat as f64)
                });
                let mut p = pkt.clone();
                p.dst = d;
                p.extra_dests.clear();
                deliveries.push(Delivery { packet: p, at: now });
            }
        });
        self.cycle += 1;
        self.stats.cycles += 1;
        deliveries
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn pending(&self) -> usize {
        self.src_queues.iter().map(|q| q.len()).sum::<usize>() + self.in_flight.len()
    }
}

// Checkpoint support. As with the crossbar, `in_flight` keeps its exact
// Vec order because delivery scanning uses `swap_remove`.
impl flumen_sim::Snapshotable for OpticalBus {
    fn snapshot(&self) -> flumen_sim::Json {
        use flumen_sim::ToJson;
        flumen_sim::Json::obj([
            ("bus_busy_until", self.bus_busy_until.to_json()),
            ("cycle", self.cycle.to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("rr", self.rr.to_json()),
            ("src_queues", self.src_queues.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }

    fn restore(&mut self, j: &flumen_sim::Json) -> std::result::Result<(), flumen_sim::JsonError> {
        use flumen_sim::FromJson;
        self.bus_busy_until = Vec::from_json(j.get("bus_busy_until")?)?;
        self.cycle = u64::from_json(j.get("cycle")?)?;
        self.in_flight = FlightBuffer::from_json(j.get("in_flight")?)?;
        self.rr = RrToken::from_json(j.get("rr")?)?;
        self.src_queues = Vec::from_json(j.get("src_queues")?)?;
        self.stats = NetStats::from_json(j.get("stats")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(net: &mut OpticalBus, cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            out.extend(net.step());
        }
        out
    }

    #[test]
    fn delivers_point_to_point() {
        let mut net = OpticalBus::optbus_16();
        net.inject(Packet::new(1, 3, 11, 512, 0));
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].packet.dst, 11);
        // ser = 2 + arb 1 + port 3 = delivery around cycle 6.
        assert!(got[0].latency() <= 10);
    }

    #[test]
    fn native_multicast_single_transmission() {
        let mut net = OpticalBus::optbus_16();
        net.inject(Packet::multicast(1, 0, &[2, 5, 9], 512, 0));
        assert_eq!(net.stats().injected, 1);
        let got = drain(&mut net, 100);
        assert_eq!(got.len(), 3);
        // One transmission's worth of bus occupancy.
        assert_eq!(net.stats().bit_hops, 512);
    }

    #[test]
    fn concurrency_limited_by_bus_count() {
        let cfg = BusConfig {
            buses: 2,
            ..BusConfig::default()
        };
        let mut net = OpticalBus::new(16, cfg).unwrap();
        // 8 simultaneous senders, only 2 buses: deliveries spread in time.
        for s in 0..8 {
            net.inject(Packet::new(s as u64, s, s + 8, 2048, 0));
        }
        let got = drain(&mut net, 200);
        assert_eq!(got.len(), 8);
        let first = got.iter().map(|d| d.at).min().unwrap();
        let last = got.iter().map(|d| d.at).max().unwrap();
        // 8 packets × 8 ser cycles / 2 buses ≈ 32 cycles of spread.
        assert!(last - first >= 16, "spread {first}..{last}");
    }

    #[test]
    fn round_robin_is_fair() {
        let mut net = OpticalBus::new(
            4,
            BusConfig {
                buses: 1,
                ..BusConfig::default()
            },
        )
        .unwrap();
        for s in 0..4 {
            for k in 0..4 {
                net.inject(Packet::new((s * 4 + k) as u64, s, (s + 1) % 4, 512, 0));
            }
        }
        let got = drain(&mut net, 400);
        assert_eq!(got.len(), 16);
        // The first four deliveries come from four different sources.
        let mut first_srcs: Vec<usize> = got.iter().take(4).map(|d| d.packet.src).collect();
        first_srcs.sort_unstable();
        assert_eq!(first_srcs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn saturates_earlier_than_crossbar_capacity() {
        // Offered load of 0.9 with 8 buses and 16 nodes cannot be served
        // (aggregate capacity = 8/16 = 0.5 of per-node bandwidth).
        use crate::traffic::{BernoulliInjector, TrafficPattern};
        use rand::SeedableRng;
        let mut net = OpticalBus::optbus_16();
        let mut inj = BernoulliInjector::new(0.9, 512, 256, TrafficPattern::UniformRandom);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for c in 0..3000u64 {
            for p in inj.generate(16, c, &mut rng) {
                net.inject(p);
            }
            net.step();
        }
        assert!(
            net.pending() > 500,
            "backlog should accumulate: {}",
            net.pending()
        );
    }

    #[test]
    fn rejects_bad_config() {
        assert!(OpticalBus::new(1, BusConfig::default()).is_err());
        assert!(OpticalBus::new(
            8,
            BusConfig {
                buses: 0,
                ..BusConfig::default()
            }
        )
        .is_err());
    }
}
