//! Synthetic traffic patterns (paper Fig. 11) and Bernoulli injection.

use rand::Rng;

/// A synthetic destination pattern over `n` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Destination drawn uniformly from all other nodes.
    UniformRandom,
    /// Destination is the bit reversal of the source id.
    BitReversal,
    /// Destination is the source rotated left by one bit (perfect shuffle).
    Shuffle,
    /// Destination is the bitwise complement of the source.
    BitComplement,
    /// Matrix-transpose pattern: swap the high and low halves of the id.
    Transpose,
    /// A fraction of traffic targets node 0, the rest is uniform.
    Hotspot,
}

impl TrafficPattern {
    /// All patterns evaluated in Fig. 11 plus extras for ablations.
    pub fn all() -> [TrafficPattern; 6] {
        [
            TrafficPattern::UniformRandom,
            TrafficPattern::BitReversal,
            TrafficPattern::Shuffle,
            TrafficPattern::BitComplement,
            TrafficPattern::Transpose,
            TrafficPattern::Hotspot,
        ]
    }

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform_random",
            TrafficPattern::BitReversal => "bit_reversal",
            TrafficPattern::Shuffle => "shuffle",
            TrafficPattern::BitComplement => "bit_complement",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Hotspot => "hotspot",
        }
    }

    /// Picks a destination for `src` in an `n`-node network (`n` must be a
    /// power of two for the bit-permutation patterns). Never returns `src`
    /// — self-traffic is redrawn (uniform) or mapped to the next node
    /// (deterministic patterns).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn destination<R: Rng + ?Sized>(&self, src: usize, n: usize, rng: &mut R) -> usize {
        assert!(n >= 2, "need at least two nodes");
        let bits = n.trailing_zeros();
        let dst = match self {
            TrafficPattern::UniformRandom => {
                let mut d = rng.gen_range(0..n);
                while d == src {
                    d = rng.gen_range(0..n);
                }
                return d;
            }
            TrafficPattern::BitReversal => reverse_bits(src, bits),
            TrafficPattern::Shuffle => ((src << 1) | (src >> (bits.max(1) - 1) as usize)) & (n - 1),
            TrafficPattern::BitComplement => !src & (n - 1),
            TrafficPattern::Transpose => {
                let half = bits / 2;
                let lo = src & ((1 << half) - 1);
                let hi = src >> half;
                (lo << (bits - half)) | hi
            }
            TrafficPattern::Hotspot => {
                if rng.gen_bool(0.2) {
                    0
                } else {
                    rng.gen_range(0..n)
                }
            }
        };
        if dst == src {
            (src + 1) % n
        } else {
            dst
        }
    }
}

fn reverse_bits(x: usize, bits: u32) -> usize {
    let mut out = 0usize;
    for b in 0..bits {
        if x >> b & 1 == 1 {
            out |= 1 << (bits - 1 - b);
        }
    }
    out
}

/// Open-loop Bernoulli packet generator: each node independently generates
/// a packet with probability `rate / ser_cycles` per cycle, so `rate` is the
/// offered load as a fraction of per-node link bandwidth.
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    /// Offered load in `[0, 1]` (fraction of link bandwidth).
    pub rate: f64,
    /// Packet size in bits.
    pub packet_bits: u32,
    /// Link bandwidth used to convert load to packets/cycle.
    pub link_bits_per_cycle: u32,
    pattern: TrafficPattern,
    next_id: u64,
}

impl BernoulliInjector {
    /// Creates an injector offering `rate` of link bandwidth with the given
    /// pattern.
    pub fn new(
        rate: f64,
        packet_bits: u32,
        link_bits_per_cycle: u32,
        pattern: TrafficPattern,
    ) -> Self {
        BernoulliInjector {
            rate,
            packet_bits,
            link_bits_per_cycle,
            pattern,
            next_id: 0,
        }
    }

    /// Probability that a node generates a packet in a given cycle.
    pub fn packet_probability(&self) -> f64 {
        let ser = (self.packet_bits as f64 / self.link_bits_per_cycle as f64).max(1.0);
        (self.rate / ser).clamp(0.0, 1.0)
    }

    /// Generates this cycle's packets for all `n` nodes.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        cycle: u64,
        rng: &mut R,
    ) -> Vec<crate::Packet> {
        let p = self.packet_probability();
        let mut out = Vec::new();
        for src in 0..n {
            if rng.gen_bool(p) {
                let dst = self.pattern.destination(src, n, rng);
                out.push(crate::Packet::new(
                    self.next_id,
                    src,
                    dst,
                    self.packet_bits,
                    cycle,
                ));
                self.next_id += 1;
            }
        }
        out
    }
}

// JSON bridge: patterns serialize as their established display names.
impl flumen_sim::ToJson for TrafficPattern {
    fn to_json(&self) -> flumen_sim::Json {
        flumen_sim::Json::Str(self.name().to_string())
    }
}

impl flumen_sim::FromJson for TrafficPattern {
    fn from_json(j: &flumen_sim::Json) -> Result<Self, flumen_sim::JsonError> {
        let name = j.as_str()?;
        TrafficPattern::all()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| flumen_sim::JsonError(format!("unknown traffic pattern {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_reversal_16() {
        let mut rng = StdRng::seed_from_u64(0);
        // 0b0001 -> 0b1000 for 16 nodes.
        assert_eq!(TrafficPattern::BitReversal.destination(1, 16, &mut rng), 8);
        assert_eq!(TrafficPattern::BitReversal.destination(3, 16, &mut rng), 12);
    }

    #[test]
    fn shuffle_rotates_left() {
        let mut rng = StdRng::seed_from_u64(0);
        // 0b0110 -> 0b1100 for 16 nodes.
        assert_eq!(TrafficPattern::Shuffle.destination(6, 16, &mut rng), 12);
        // 0b1001 -> 0b0011.
        assert_eq!(TrafficPattern::Shuffle.destination(9, 16, &mut rng), 3);
    }

    #[test]
    fn complement_pattern() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            TrafficPattern::BitComplement.destination(0, 16, &mut rng),
            15
        );
        assert_eq!(
            TrafficPattern::BitComplement.destination(5, 16, &mut rng),
            10
        );
    }

    #[test]
    fn never_self_traffic() {
        let mut rng = StdRng::seed_from_u64(7);
        for pattern in TrafficPattern::all() {
            for src in 0..16 {
                for _ in 0..8 {
                    let d = pattern.destination(src, 16, &mut rng);
                    assert_ne!(d, src, "{} src {src}", pattern.name());
                    assert!(d < 16);
                }
            }
        }
    }

    #[test]
    fn injector_rate_scales_probability() {
        let inj_low = BernoulliInjector::new(0.1, 512, 256, TrafficPattern::UniformRandom);
        let inj_high = BernoulliInjector::new(0.8, 512, 256, TrafficPattern::UniformRandom);
        // ser = 2 cycles, so probability = rate / 2.
        assert!((inj_low.packet_probability() - 0.05).abs() < 1e-12);
        assert!((inj_high.packet_probability() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn injector_generates_about_the_right_count() {
        let mut inj = BernoulliInjector::new(0.5, 256, 256, TrafficPattern::UniformRandom);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0usize;
        let cycles = 2000;
        for c in 0..cycles {
            total += inj.generate(16, c, &mut rng).len();
        }
        let expected = 0.5 * 16.0 * cycles as f64;
        let ratio = total as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "generated {total}, expected ≈{expected}"
        );
    }

    #[test]
    fn injector_ids_unique() {
        let mut inj = BernoulliInjector::new(1.0, 256, 256, TrafficPattern::UniformRandom);
        let mut rng = StdRng::seed_from_u64(4);
        let a = inj.generate(4, 0, &mut rng);
        let b = inj.generate(4, 1, &mut rng);
        let mut ids: Vec<u64> = a.iter().chain(b.iter()).map(|p| p.id).collect();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }
}
