//! Wiring components into a steppable, checkpointable fabric.

use super::channel::{ChannelId, Channels, CREDIT_UNBOUNDED};
use super::node::{Node, NodeCtx, Payload};
use super::router::Flit;
use crate::packet::{Delivery, Packet};
use crate::stats::NetStats;
use crate::{Network, NocError, Result};
use flumen_sim::{FromJson, Json, JsonError, ToJson};
use flumen_trace::{EventKind, TraceCategory, TraceEvent, TraceHandle};
use std::collections::VecDeque;

/// One external attachment point: where the fabric accepts payloads from
/// a source queue and where it hands them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Channel carrying injected payloads into the fabric.
    pub ingress: ChannelId,
    /// Channel carrying delivered payloads out of the fabric.
    pub egress: ChannelId,
}

/// Collects channels and components, then validates the wiring.
#[derive(Debug)]
pub struct FabricBuilder<P: Payload> {
    chans: Channels<P>,
    nodes: Vec<Box<dyn Node<P>>>,
}

impl<P: Payload> Default for FabricBuilder<P> {
    fn default() -> Self {
        FabricBuilder::new()
    }
}

impl<P: Payload> FabricBuilder<P> {
    /// An empty builder.
    pub fn new() -> Self {
        FabricBuilder {
            chans: Channels::new(),
            nodes: Vec::new(),
        }
    }

    /// Adds a channel (wire latency clamped to ≥ 1 cycle, in-flight
    /// capacity clamped to ≥ 1).
    pub fn channel(&mut self, latency: u64, capacity: usize) -> ChannelId {
        self.chans.add(latency, capacity)
    }

    /// Adds a component; its [`Interface`](super::Interface) ports are
    /// validated at [`FabricBuilder::build`].
    pub fn add(&mut self, node: impl Node<P> + 'static) -> usize {
        self.nodes.push(Box::new(node));
        self.nodes.len() - 1
    }

    /// Validates the wiring and produces the steppable graph. Every
    /// channel must have exactly one producer (a node output or an
    /// endpoint ingress) and exactly one consumer (a node input or an
    /// endpoint egress).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidTopology`] naming the first mis-wired
    /// channel.
    pub fn build(self, endpoints: Vec<Endpoint>) -> Result<ComposedGraph<P>> {
        let n = self.chans.len();
        let mut producers = vec![0usize; n];
        let mut consumers = vec![0usize; n];
        let tally = |counts: &mut Vec<usize>, id: ChannelId, what: &str| -> Result<()> {
            match counts.get_mut(id.index()) {
                Some(c) => {
                    *c += 1;
                    Ok(())
                }
                None => Err(NocError::InvalidTopology {
                    reason: format!("{what} references unknown channel {}", id.index()),
                }),
            }
        };
        for node in &self.nodes {
            for c in node.outputs() {
                tally(&mut producers, c, &node.name())?;
            }
            for c in node.inputs() {
                tally(&mut consumers, c, &node.name())?;
            }
        }
        for (k, ep) in endpoints.iter().enumerate() {
            tally(&mut producers, ep.ingress, &format!("endpoint {k} ingress"))?;
            tally(&mut consumers, ep.egress, &format!("endpoint {k} egress"))?;
        }
        for (i, (&p, &c)) in producers.iter().zip(&consumers).enumerate() {
            if p != 1 || c != 1 {
                return Err(NocError::InvalidTopology {
                    reason: format!(
                        "channel {i} has {p} producer(s) and {c} consumer(s); \
                         expected exactly one of each"
                    ),
                });
            }
        }
        Ok(ComposedGraph {
            chans: self.chans,
            nodes: self.nodes,
            endpoints,
        })
    }
}

/// A validated component graph, steppable one cycle at a time.
///
/// Generic over the payload so combinator pipelines can be exercised with
/// plain values; packet-carrying fabrics wrap it in [`ComposedFabric`].
#[derive(Debug)]
pub struct ComposedGraph<P: Payload> {
    chans: Channels<P>,
    nodes: Vec<Box<dyn Node<P>>>,
    endpoints: Vec<Endpoint>,
}

impl<P: Payload> ComposedGraph<P> {
    /// The external attachment points, in endpoint order.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// The channel arena (handshake counters, pending payloads).
    pub fn channels(&self) -> &Channels<P> {
        &self.chans
    }

    /// Payloads anywhere inside the fabric (channels + node buffers).
    pub fn pending(&self) -> usize {
        self.chans.pending() + self.nodes.iter().map(|n| n.buffered()).sum::<usize>()
    }

    /// Runs one cycle of the phased evaluation order (see the module
    /// docs). `source` is called once per endpoint whose ingress can
    /// accept a payload this cycle; returns `(endpoint, payload)` pairs
    /// delivered at the egresses, in endpoint order.
    pub fn step_cycle(
        &mut self,
        now: u64,
        ctx: &mut NodeCtx<'_>,
        mut source: impl FnMut(usize) -> Option<P>,
    ) -> Vec<(usize, P)> {
        // Phase 1: ready — credits from pre-cycle state.
        for node in &mut self.nodes {
            node.publish_ready(now, &mut self.chans);
        }
        for ep in &self.endpoints {
            self.chans.publish_credits(ep.egress, CREDIT_UNBOUNDED);
        }
        // Phase 2: ingress — at most one payload per endpoint.
        for (k, ep) in self.endpoints.iter().enumerate() {
            if self.chans.effective_credits(ep.ingress) >= 1 && self.chans.can_send(ep.ingress) {
                if let Some(p) = source(k) {
                    self.chans.send(ep.ingress, p, now);
                }
            }
        }
        // Phase 3: valid — due heads move to consumers with credits.
        let stalled = self.chans.deliver_due(now);
        if !stalled.is_empty() {
            let total = self.chans.stalls_total();
            ctx.tracer.emit(|| {
                TraceEvent::counter(
                    TraceCategory::Noc,
                    "noc::handshake_stall",
                    now,
                    0,
                    total as f64,
                )
            });
            #[cfg(feature = "deep-trace")]
            for id in &stalled {
                let per_port = self.chans.stalls(*id);
                let track = id.index() as u32;
                ctx.tracer.emit(|| {
                    TraceEvent::counter(
                        TraceCategory::Noc,
                        "noc::backpressure",
                        now,
                        track,
                        per_port as f64,
                    )
                });
            }
        }
        // Phase 4: step every node.
        for node in &mut self.nodes {
            node.step(now, &mut self.chans, ctx);
        }
        // Phase 5: egress.
        let mut out = Vec::new();
        for (k, ep) in self.endpoints.iter().enumerate() {
            if let Some(p) = self.chans.take(ep.egress) {
                out.push((k, p));
            }
        }
        // Defensive: a mis-behaved node must not lose payloads.
        self.chans.requeue_undelivered(now);
        out
    }

    /// Serializes every channel's and node's evolving state.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("channels", self.chans.snapshot()),
            (
                "nodes",
                Json::Arr(self.nodes.iter().map(|n| n.state_json()).collect()),
            ),
        ])
    }

    /// Restores a snapshot into this (identically built) graph.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the snapshot does not match the
    /// graph's shape.
    pub fn restore(&mut self, j: &Json) -> std::result::Result<(), JsonError> {
        self.chans.restore(j.get("channels")?)?;
        let nodes = j.get("nodes")?;
        let arr = nodes.as_arr()?;
        if arr.len() != self.nodes.len() {
            return Err(JsonError(format!(
                "ComposedGraph: snapshot has {} nodes, graph has {}",
                arr.len(),
                self.nodes.len()
            )));
        }
        for (node, nj) in self.nodes.iter_mut().zip(arr) {
            node.restore_state(nj)?;
        }
        Ok(())
    }
}

/// A composed packet fabric: a [`ComposedGraph`] over [`Flit`]s plus the
/// open-loop source queues, statistics, and tracing that make it a
/// drop-in [`Network`] — usable by the harness, the sweep executor, and
/// the system engine exactly like the hand-written fabrics.
#[derive(Debug)]
pub struct ComposedFabric {
    name: String,
    graph: ComposedGraph<Flit>,
    src_queues: Vec<VecDeque<Packet>>,
    cycle: u64,
    stats: NetStats,
    tracer: TraceHandle,
}

impl ComposedFabric {
    /// Wraps a validated flit graph. The link count (for per-link
    /// utilization) is the graph's channel count.
    pub fn new(name: impl Into<String>, graph: ComposedGraph<Flit>) -> Self {
        let nodes = graph.endpoints().len();
        let links = graph.channels().len();
        ComposedFabric {
            name: name.into(),
            graph,
            src_queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            cycle: 0,
            stats: NetStats::new(links),
            tracer: TraceHandle::disabled(),
        }
    }

    /// The fabric's display name ("torus", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Handshake stalls observed so far (backpressure pressure gauge).
    pub fn handshake_stalls(&self) -> u64 {
        self.graph.channels().stalls_total()
    }

    /// Completed channel handshakes so far.
    pub fn handshake_transfers(&self) -> u64 {
        self.graph.channels().transfers_total()
    }
}

impl Network for ComposedFabric {
    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn num_nodes(&self) -> usize {
        self.src_queues.len()
    }

    fn inject(&mut self, pkt: Packet) {
        // Composed fabrics are electrical-style: multicasts replicate at
        // the source, each replica with its own id and trace span.
        if pkt.is_multicast() {
            for (i, d) in pkt.dests().into_iter().enumerate() {
                let mut p = pkt.clone();
                p.dst = d;
                p.extra_dests.clear();
                p.id = pkt.id.wrapping_add((i as u64) << 48);
                self.inject(p);
            }
            return;
        }
        self.stats.injected += 1;
        self.stats.bits_injected += pkt.bits as u64;
        let now = self.cycle;
        self.tracer.emit(|| {
            TraceEvent::new(
                TraceCategory::Noc,
                "pkt",
                EventKind::AsyncBegin,
                now,
                pkt.src as u32,
            )
            .with_id(pkt.id)
            .with_arg("ndest", 1.0)
            .with_arg("bits", pkt.bits as f64)
        });
        if let Some(q) = self.src_queues.get_mut(pkt.src) {
            q.push_back(pkt);
        }
    }

    fn step(&mut self) -> Vec<Delivery> {
        let now = self.cycle;
        let Self {
            graph,
            src_queues,
            stats,
            tracer,
            ..
        } = self;
        let mut ctx = NodeCtx { stats, tracer };
        let egressed = graph.step_cycle(now, &mut ctx, |ep| {
            src_queues
                .get_mut(ep)
                .and_then(VecDeque::pop_front)
                .map(|pkt| Flit { pkt, ready_at: 0 })
        });
        let mut deliveries = Vec::with_capacity(egressed.len());
        for (ep, flit) in egressed {
            let lat = now.saturating_sub(flit.pkt.created_at);
            self.stats.record_latency(lat);
            self.tracer.emit(|| {
                TraceEvent::new(
                    TraceCategory::Noc,
                    "pkt",
                    EventKind::AsyncEnd,
                    now,
                    ep as u32,
                )
                .with_id(flit.pkt.id)
                .with_arg("lat", lat as f64)
            });
            deliveries.push(Delivery {
                packet: flit.pkt,
                at: now,
            });
        }
        self.cycle += 1;
        self.stats.cycles += 1;
        deliveries
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    fn pending(&self) -> usize {
        self.src_queues.iter().map(VecDeque::len).sum::<usize>() + self.graph.pending()
    }
}

// Checkpoint support: the graph serializes its channels and nodes; the
// fabric adds the open-loop state around it.
impl flumen_sim::Snapshotable for ComposedFabric {
    fn snapshot(&self) -> Json {
        Json::obj([
            ("cycle", self.cycle.to_json()),
            ("graph", self.graph.snapshot()),
            ("src_queues", self.src_queues.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }

    fn restore(&mut self, j: &Json) -> std::result::Result<(), JsonError> {
        self.cycle = u64::from_json(j.get("cycle")?)?;
        self.graph.restore(j.get("graph")?)?;
        let src_queues: Vec<VecDeque<Packet>> = Vec::from_json(j.get("src_queues")?)?;
        if src_queues.len() != self.src_queues.len() {
            return Err(JsonError(format!(
                "ComposedFabric: snapshot has {} source queues, fabric has {}",
                src_queues.len(),
                self.src_queues.len()
            )));
        }
        self.src_queues = src_queues;
        self.stats = NetStats::from_json(j.get("stats")?)?;
        Ok(())
    }
}
