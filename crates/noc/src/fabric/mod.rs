//! Latency-insensitive fabric combinators.
//!
//! This module turns a router, link, arbiter, or FIFO into a *value you
//! compose* rather than a struct you hand-wire. The design follows the
//! latency-insensitive interface discipline of ShakeFlow (ASPLOS 2023):
//! components talk over [`Channel`]s with a ready/valid handshake, each
//! component declares its ports through the [`Interface`] trait, and a
//! [`FabricBuilder`] wires them into a [`ComposedFabric`] that implements
//! the crate's [`Network`](crate::Network) trait — snapshotable, traceable,
//! and covered by the same flit-conservation proptests as the hand-written
//! fabrics.
//!
//! # Handshake semantics
//!
//! Each cycle runs in fixed phases so that results never depend on node
//! iteration order:
//!
//! 1. **ready** — every node publishes *credits* (free buffer slots) on its
//!    input channels, computed from pre-cycle state.
//! 2. **ingress** — endpoint source queues offer at most one payload each.
//! 3. **valid** — every channel whose head item is due (`available_at ≤
//!    now`) moves it into a single delivered slot *iff* the consumer
//!    published a credit; otherwise a `noc::handshake_stall` is counted.
//! 4. **step** — every node consumes its delivered inputs and emits into
//!    its output channels. Sends become visible no earlier than the next
//!    cycle (channel latency ≥ 1), so intra-phase order cannot leak.
//! 5. **egress** — payloads on endpoint egress channels become deliveries.
//!
//! Credits subtract items already in flight on the channel
//! ([`Channels::effective_credits`]), so a producer's send decision is a
//! pure function of last cycle's state — the determinism contract that
//! makes composed fabrics bit-identically checkpointable at any cycle.
//!
//! # Building a topology
//!
//! See [`torus`] for the worked example: a 2-D torus with dimension-order
//! routing and bubble flow control is one channel grid, one
//! [`RouterNode`] per node, and a routing closure — under 100 lines,
//! inheriting snapshot/restore, tracing, and the generic proptests.

mod arbiter;
mod channel;
mod combinators;
mod fifo;
mod flight;
mod graph;
mod node;
mod router;
mod torus;

pub use arbiter::RrToken;
pub use channel::{ChannelId, Channels};
pub use combinators::{
    arbiter, comb, fifo, filter, fork, fsm, join, map, FifoNode, ForkNode, FsmNode, JoinNode,
};
pub use fifo::Fifo;
pub use flight::FlightBuffer;
pub use graph::{ComposedFabric, ComposedGraph, Endpoint, FabricBuilder};
pub use node::{Interface, Node, NodeCtx, Payload};
pub use router::{Flit, RouterNode, DIM_LOCAL};
pub use torus::{torus, torus_4x4};

// The wavefront arbiter is itself a reusable arbitration combinator; the
// crossbar consumes it directly.
pub use crate::wavefront::WavefrontArbiter;
