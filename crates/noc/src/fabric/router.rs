//! A generic input-queued router node for packet-carrying fabrics.

use super::arbiter::RrToken;
use super::channel::{ChannelId, Channels};
use super::fifo::Fifo;
use super::node::{Interface, Node, NodeCtx};
use crate::packet::Packet;
use flumen_sim::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Dimension class of a local (injection/ejection) port: never equal to a
/// ring dimension, so traffic entering the network always pays the
/// stricter bubble-rule spare.
pub const DIM_LOCAL: usize = usize::MAX;

/// The payload of packet-carrying composed fabrics: a packet plus the
/// cycle at which it becomes eligible for switching at its current router
/// (models the router pipeline delay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// The packet in transit.
    pub pkt: Packet,
    /// Earliest cycle the current router may switch it.
    pub ready_at: u64,
}

flumen_sim::json_struct!(Flit { pkt, ready_at });

/// Timing knobs shared by every [`RouterNode`] in a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterTiming {
    /// Link bandwidth, bits per core cycle.
    pub link_bits_per_cycle: u32,
    /// Router pipeline delay per hop, cycles.
    pub router_delay: u64,
    /// Input buffer capacity per port, packets.
    pub input_queue_pkts: usize,
}

/// An input-queued router with round-robin port arbitration, per-hop
/// serialization, and bubble flow control.
///
/// Geometry is declarative: the in/out port channel lists, a dimension
/// class per port (for the bubble rule — a flit crossing dimensions or
/// entering from the local port must leave **two** free slots downstream,
/// continuing traffic one), and a routing closure `dst → out-port index`.
/// The last in port is injection, the last out port ejection.
pub struct RouterNode {
    id: usize,
    timing: RouterTiming,
    in_ports: Vec<ChannelId>,
    out_ports: Vec<ChannelId>,
    in_dim: Vec<usize>,
    out_dim: Vec<usize>,
    route: Box<dyn Fn(usize) -> usize>,
    inputs: Vec<Fifo<Flit>>,
    out_busy_until: Vec<u64>,
    rr: RrToken,
}

impl fmt::Debug for RouterNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouterNode")
            .field("id", &self.id)
            .field("inputs", &self.inputs)
            .field("out_busy_until", &self.out_busy_until)
            .field("rr", &self.rr)
            .finish_non_exhaustive()
    }
}

impl RouterNode {
    /// Builds a router. `in_ports`/`in_dim` and `out_ports`/`out_dim`
    /// must be the same length; the routing closure must return a valid
    /// out-port index for every destination (the ejection port for this
    /// router's own id).
    pub fn new(
        id: usize,
        timing: RouterTiming,
        in_ports: Vec<ChannelId>,
        out_ports: Vec<ChannelId>,
        in_dim: Vec<usize>,
        out_dim: Vec<usize>,
        route: impl Fn(usize) -> usize + 'static,
    ) -> Self {
        debug_assert_eq!(in_ports.len(), in_dim.len());
        debug_assert_eq!(out_ports.len(), out_dim.len());
        let inputs = in_ports
            .iter()
            .map(|_| Fifo::bounded(timing.input_queue_pkts.max(1)))
            .collect();
        let out_busy_until = vec![0; out_ports.len()];
        RouterNode {
            id,
            timing,
            in_ports,
            out_ports,
            in_dim,
            out_dim,
            route: Box::new(route),
            inputs,
            out_busy_until,
            rr: RrToken::new(),
        }
    }
}

impl Interface for RouterNode {
    fn inputs(&self) -> Vec<ChannelId> {
        self.in_ports.clone()
    }
    fn outputs(&self) -> Vec<ChannelId> {
        self.out_ports.clone()
    }
    fn name(&self) -> String {
        format!("router{}", self.id)
    }
}

impl Node<Flit> for RouterNode {
    fn publish_ready(&mut self, _now: u64, chans: &mut Channels<Flit>) {
        for (buf, &c) in self.inputs.iter().zip(&self.in_ports) {
            chans.publish_credits(c, buf.free_slots());
        }
    }

    fn step(&mut self, now: u64, chans: &mut Channels<Flit>, ctx: &mut NodeCtx<'_>) {
        // Absorb arrivals: space is guaranteed by the credits published
        // last phase-1; the router pipeline delay starts on arrival.
        for (buf, &c) in self.inputs.iter_mut().zip(&self.in_ports) {
            if let Some(mut flit) = chans.take(c) {
                flit.ready_at = now + self.timing.router_delay;
                let _accepted = buf.push_back(flit);
                debug_assert!(_accepted, "router accepted beyond its published credits");
            }
        }
        // Switch at most one flit per input port, round-robin over ports.
        let nports = self.in_ports.len();
        let eject = self.out_ports.len().saturating_sub(1);
        for i in self.rr.scan(nports) {
            let Some(head) = self.inputs.get(i).and_then(Fifo::front) else {
                continue;
            };
            if head.ready_at > now {
                continue;
            }
            let out = (self.route)(head.pkt.dst).min(eject);
            let Some(&out_ch) = self.out_ports.get(out) else {
                continue;
            };
            if self.out_busy_until.get(out).is_some_and(|&b| b > now) {
                continue;
            }
            if out == eject {
                // Ejection: one per cycle through the local out port; the
                // egress channel is always ready.
                if !chans.can_send(out_ch) {
                    continue;
                }
                let Some(flit) = self.inputs.get_mut(i).and_then(Fifo::pop_front) else {
                    continue;
                };
                self.out_busy_until[out] = now + 1;
                chans.send(out_ch, flit, now);
                continue;
            }
            // Bubble flow control: flits entering this dimension ring
            // (injection or a turn) must leave two free slots downstream,
            // continuing traffic one. Combined with dimension-order
            // routing this keeps a bubble in every ring — no deadlock.
            let crossing = self.in_dim.get(i) != self.out_dim.get(out);
            let spare = if crossing { 2 } else { 1 };
            if chans.effective_credits(out_ch) < spare || !chans.can_send(out_ch) {
                continue;
            }
            let Some(mut flit) = self.inputs.get_mut(i).and_then(Fifo::pop_front) else {
                continue;
            };
            let ser = flit.pkt.ser_cycles(self.timing.link_bits_per_cycle);
            self.out_busy_until[out] = now + ser;
            if let Some(busy) = ctx.stats.link_busy.get_mut(out_ch.index()) {
                *busy += ser;
            }
            ctx.stats.bit_hops += flit.pkt.bits as u64;
            flit.ready_at = 0;
            chans.send_after(out_ch, flit, now, ser);
        }
        self.rr.rotate(nports);
        #[cfg(feature = "deep-trace")]
        for (buf, &c) in self.inputs.iter().zip(&self.in_ports) {
            let occ = buf.len();
            let track = c.index() as u32;
            ctx.tracer.emit(|| {
                flumen_trace::TraceEvent::counter(
                    flumen_trace::TraceCategory::Noc,
                    "noc::fifo_occupancy",
                    now,
                    track,
                    occ as f64,
                )
            });
        }
    }

    fn buffered(&self) -> usize {
        self.inputs.iter().map(Fifo::len).sum()
    }

    fn state_json(&self) -> Json {
        Json::obj([
            ("inputs", self.inputs.to_json()),
            ("out_busy_until", self.out_busy_until.to_json()),
            ("rr", self.rr.to_json()),
        ])
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError> {
        let inputs = j.get("inputs")?;
        let arr = inputs.as_arr()?;
        if arr.len() != self.inputs.len() {
            return Err(JsonError(format!(
                "RouterNode {}: snapshot has {} input queues, node has {}",
                self.id,
                arr.len(),
                self.inputs.len()
            )));
        }
        for (buf, bj) in self.inputs.iter_mut().zip(arr) {
            buf.restore_items(bj)?;
        }
        self.out_busy_until = Vec::from_json(j.get("out_busy_until")?)?;
        self.rr = RrToken::from_json(j.get("rr")?)?;
        Ok(())
    }
}
