//! The component contract: typed ports plus the two-phase step.

use super::channel::{ChannelId, Channels};
use crate::stats::NetStats;
use flumen_sim::{FromJson, Json, JsonError, ToJson};
use flumen_trace::TraceHandle;

/// What a payload must provide to ride a channel: cheap cloning (fork
/// replicates), debuggability, and a canonical JSON form (checkpoints).
pub trait Payload: Clone + std::fmt::Debug + ToJson + FromJson + 'static {}

impl<T: Clone + std::fmt::Debug + ToJson + FromJson + 'static> Payload for T {}

/// Typed port declaration: which channels a component consumes from and
/// produces into. [`FabricBuilder`](super::FabricBuilder) checks at build
/// time that every channel has exactly one producer and one consumer —
/// the wiring errors a hand-written fabric only surfaces at runtime.
pub trait Interface {
    /// Channels this component consumes from.
    fn inputs(&self) -> Vec<ChannelId>;
    /// Channels this component produces into.
    fn outputs(&self) -> Vec<ChannelId>;
    /// Display name for wiring diagnostics.
    fn name(&self) -> String;
}

/// Shared per-cycle context handed to every node step: the fabric-wide
/// statistics (links are channels, indexed by [`ChannelId::index`]) and
/// the trace sink.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// Fabric statistics; nodes account `link_busy` and `bit_hops`.
    pub stats: &'a mut NetStats,
    /// Trace sink (free when disabled).
    pub tracer: &'a TraceHandle,
}

/// A composable component.
///
/// The contract mirrors the module-level evaluation order: `publish_ready`
/// must be a pure function of the node's pre-cycle state (it runs for all
/// nodes before any `step`), and `step` may consume at most the deliveries
/// its own published credits earned. Under those two rules, node iteration
/// order is unobservable and composed fabrics are deterministic.
pub trait Node<P: Payload>: Interface + std::fmt::Debug {
    /// Phase 1: publish credits (free buffer slots) on input channels.
    fn publish_ready(&mut self, now: u64, chans: &mut Channels<P>);

    /// Phase 4: consume delivered inputs, update state, emit outputs.
    fn step(&mut self, now: u64, chans: &mut Channels<P>, ctx: &mut NodeCtx<'_>);

    /// Payloads buffered inside the node (for `Network::pending`).
    fn buffered(&self) -> usize {
        0
    }

    /// The node's evolving state as canonical JSON (checkpoints).
    fn state_json(&self) -> Json;

    /// Restores state written by [`Node::state_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the snapshot does not match this
    /// node's shape.
    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError>;
}
