//! Stock components: `fifo`, `comb`/`map`, `filter`, `fsm`, `fork`,
//! `join`/`arbiter`.
//!
//! Each constructor returns a value implementing [`Node`]; hand it to
//! [`FabricBuilder::add`](super::FabricBuilder::add) and it participates
//! in the handshake, snapshotting, and tracing like any router.

use super::arbiter::RrToken;
use super::channel::{ChannelId, Channels};
use super::fifo::Fifo;
use super::node::{Interface, Node, NodeCtx, Payload};
use flumen_sim::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Whether `out` can accept one more send this cycle: the consumer
/// published a free slot not already claimed, and the wire has room.
fn out_ready<P>(chans: &Channels<P>, out: ChannelId) -> bool {
    chans.effective_credits(out) >= 1 && chans.can_send(out)
}

// ---------------------------------------------------------------------
// fsm / comb / map / filter
// ---------------------------------------------------------------------

/// A one-in one-out Mealy machine: state `S` plus a transition closure
/// `FnMut(now, &mut S, input) -> Option<output>`. Returning `None`
/// consumes the input without emitting (a `filter`); this breaks flit
/// conservation by design, so packet-carrying fabrics should only use
/// payload-preserving transitions.
pub struct FsmNode<P, S, F> {
    label: String,
    input: ChannelId,
    output: ChannelId,
    state: S,
    slot: Option<P>,
    f: F,
}

impl<P, S, F> fmt::Debug for FsmNode<P, S, F>
where
    P: fmt::Debug,
    S: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsmNode")
            .field("label", &self.label)
            .field("state", &self.state)
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

impl<P, S, F> Interface for FsmNode<P, S, F> {
    fn inputs(&self) -> Vec<ChannelId> {
        vec![self.input]
    }
    fn outputs(&self) -> Vec<ChannelId> {
        vec![self.output]
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

impl<P, S, F> Node<P> for FsmNode<P, S, F>
where
    P: Payload,
    S: fmt::Debug + ToJson + FromJson + 'static,
    F: FnMut(u64, &mut S, P) -> Option<P> + 'static,
{
    fn publish_ready(&mut self, _now: u64, chans: &mut Channels<P>) {
        chans.publish_credits(self.input, usize::from(self.slot.is_none()));
    }

    fn step(&mut self, now: u64, chans: &mut Channels<P>, _ctx: &mut NodeCtx<'_>) {
        if self.slot.is_none() {
            if let Some(p) = chans.take(self.input) {
                self.slot = (self.f)(now, &mut self.state, p);
            }
        }
        if self.slot.is_some() && out_ready(chans, self.output) {
            if let Some(p) = self.slot.take() {
                chans.send(self.output, p, now);
            }
        }
    }

    fn buffered(&self) -> usize {
        usize::from(self.slot.is_some())
    }

    fn state_json(&self) -> Json {
        Json::obj([
            ("slot", self.slot.to_json()),
            ("state", self.state.to_json()),
        ])
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError> {
        self.slot = Option::from_json(j.get("slot")?)?;
        self.state = S::from_json(j.get("state")?)?;
        Ok(())
    }
}

/// A stateful Mealy component (see [`FsmNode`]).
pub fn fsm<P, S, F>(
    label: impl Into<String>,
    input: ChannelId,
    output: ChannelId,
    init: S,
    f: F,
) -> FsmNode<P, S, F>
where
    P: Payload,
    S: fmt::Debug + ToJson + FromJson + 'static,
    F: FnMut(u64, &mut S, P) -> Option<P> + 'static,
{
    FsmNode {
        label: label.into(),
        input,
        output,
        state: init,
        slot: None,
        f,
    }
}

/// A pure combinational transform lifted into the handshake (ShakeFlow's
/// `comb`): every input produces exactly one output, so conservation
/// holds through it.
pub fn comb<P, F>(
    label: impl Into<String>,
    input: ChannelId,
    output: ChannelId,
    mut f: F,
) -> FsmNode<P, (), impl FnMut(u64, &mut (), P) -> Option<P>>
where
    P: Payload,
    F: FnMut(P) -> P + 'static,
{
    fsm(label, input, output, (), move |_, _, p| Some(f(p)))
}

/// Stream-idiom alias for [`comb`]: transform each payload in place.
pub fn map<P, F>(
    label: impl Into<String>,
    input: ChannelId,
    output: ChannelId,
    f: F,
) -> FsmNode<P, (), impl FnMut(u64, &mut (), P) -> Option<P>>
where
    P: Payload,
    F: FnMut(P) -> P + 'static,
{
    comb(label, input, output, f)
}

/// Drops payloads failing the predicate; the drop count rides in the
/// node's serialized state. Not conservation-safe — use on telemetry or
/// control streams, never on packet paths covered by the conservation
/// proptests.
pub fn filter<P, F>(
    label: impl Into<String>,
    input: ChannelId,
    output: ChannelId,
    mut pred: F,
) -> FsmNode<P, u64, impl FnMut(u64, &mut u64, P) -> Option<P>>
where
    P: Payload,
    F: FnMut(&P) -> bool + 'static,
{
    fsm(label, input, output, 0u64, move |_, dropped, p| {
        if pred(&p) {
            Some(p)
        } else {
            *dropped += 1;
            None
        }
    })
}

// ---------------------------------------------------------------------
// fifo
// ---------------------------------------------------------------------

/// An elastic buffer: absorbs up to `capacity` payloads and forwards one
/// per cycle when the downstream is ready.
#[derive(Debug)]
pub struct FifoNode<P> {
    label: String,
    input: ChannelId,
    output: ChannelId,
    buf: Fifo<P>,
}

impl<P> Interface for FifoNode<P> {
    fn inputs(&self) -> Vec<ChannelId> {
        vec![self.input]
    }
    fn outputs(&self) -> Vec<ChannelId> {
        vec![self.output]
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

impl<P: Payload> Node<P> for FifoNode<P> {
    fn publish_ready(&mut self, _now: u64, chans: &mut Channels<P>) {
        chans.publish_credits(self.input, self.buf.free_slots());
    }

    fn step(&mut self, now: u64, chans: &mut Channels<P>, _ctx: &mut NodeCtx<'_>) {
        if let Some(p) = chans.take(self.input) {
            let _accepted = self.buf.push_back(p);
            debug_assert!(_accepted, "fifo accepted beyond its published credits");
        }
        if !self.buf.is_empty() && out_ready(chans, self.output) {
            if let Some(p) = self.buf.pop_front() {
                chans.send(self.output, p, now);
            }
        }
        #[cfg(feature = "deep-trace")]
        {
            let occ = self.buf.len();
            let track = self.input.index() as u32;
            _ctx.tracer.emit(|| {
                flumen_trace::TraceEvent::counter(
                    flumen_trace::TraceCategory::Noc,
                    "noc::fifo_occupancy",
                    now,
                    track,
                    occ as f64,
                )
            });
        }
    }

    fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn state_json(&self) -> Json {
        self.buf.to_json()
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError> {
        self.buf.restore_items(j)
    }
}

/// An elastic FIFO stage (see [`FifoNode`]).
pub fn fifo<P: Payload>(
    label: impl Into<String>,
    input: ChannelId,
    output: ChannelId,
    capacity: usize,
) -> FifoNode<P> {
    FifoNode {
        label: label.into(),
        input,
        output,
        buf: Fifo::bounded(capacity.max(1)),
    }
}

// ---------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------

/// Replicates each payload to every output. The copy waits until *all*
/// outputs can accept (lock-step fork, as in ShakeFlow) so no branch ever
/// observes a partial replica.
#[derive(Debug)]
pub struct ForkNode<P> {
    label: String,
    input: ChannelId,
    outputs: Vec<ChannelId>,
    slot: Option<P>,
}

impl<P> Interface for ForkNode<P> {
    fn inputs(&self) -> Vec<ChannelId> {
        vec![self.input]
    }
    fn outputs(&self) -> Vec<ChannelId> {
        self.outputs.clone()
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

impl<P: Payload> Node<P> for ForkNode<P> {
    fn publish_ready(&mut self, _now: u64, chans: &mut Channels<P>) {
        chans.publish_credits(self.input, usize::from(self.slot.is_none()));
    }

    fn step(&mut self, now: u64, chans: &mut Channels<P>, _ctx: &mut NodeCtx<'_>) {
        if self.slot.is_none() {
            self.slot = chans.take(self.input);
        }
        let all_ready = self.outputs.iter().all(|&o| out_ready(chans, o));
        if all_ready {
            if let Some(p) = self.slot.take() {
                for &o in &self.outputs {
                    chans.send(o, p.clone(), now);
                }
            }
        }
    }

    fn buffered(&self) -> usize {
        usize::from(self.slot.is_some())
    }

    fn state_json(&self) -> Json {
        self.slot.to_json()
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError> {
        self.slot = Option::from_json(j)?;
        Ok(())
    }
}

/// A lock-step replicating fork (see [`ForkNode`]).
pub fn fork<P: Payload>(
    label: impl Into<String>,
    input: ChannelId,
    outputs: Vec<ChannelId>,
) -> ForkNode<P> {
    ForkNode {
        label: label.into(),
        input,
        outputs,
        slot: None,
    }
}

// ---------------------------------------------------------------------
// join / arbiter
// ---------------------------------------------------------------------

/// Merges several input streams into one output, granting one payload per
/// cycle by round-robin arbitration over small per-input buffers.
#[derive(Debug)]
pub struct JoinNode<P> {
    label: String,
    inputs: Vec<ChannelId>,
    output: ChannelId,
    bufs: Vec<Fifo<P>>,
    rr: RrToken,
}

impl<P> Interface for JoinNode<P> {
    fn inputs(&self) -> Vec<ChannelId> {
        self.inputs.clone()
    }
    fn outputs(&self) -> Vec<ChannelId> {
        vec![self.output]
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

impl<P: Payload> Node<P> for JoinNode<P> {
    fn publish_ready(&mut self, _now: u64, chans: &mut Channels<P>) {
        for (buf, &c) in self.bufs.iter().zip(&self.inputs) {
            chans.publish_credits(c, buf.free_slots());
        }
    }

    fn step(&mut self, now: u64, chans: &mut Channels<P>, _ctx: &mut NodeCtx<'_>) {
        for (buf, &c) in self.bufs.iter_mut().zip(&self.inputs) {
            if let Some(p) = chans.take(c) {
                let _accepted = buf.push_back(p);
                debug_assert!(_accepted, "join accepted beyond its published credits");
            }
        }
        if out_ready(chans, self.output) {
            let n = self.bufs.len();
            for i in self.rr.scan(n) {
                let Some(p) = self.bufs.get_mut(i).and_then(Fifo::pop_front) else {
                    continue;
                };
                chans.send(self.output, p, now);
                self.rr.grant(i, n);
                break;
            }
        }
    }

    fn buffered(&self) -> usize {
        self.bufs.iter().map(Fifo::len).sum()
    }

    fn state_json(&self) -> Json {
        Json::obj([("bufs", self.bufs.to_json()), ("rr", self.rr.to_json())])
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), JsonError> {
        let bufs = j.get("bufs")?;
        let arr = bufs.as_arr()?;
        if arr.len() != self.bufs.len() {
            return Err(JsonError(format!(
                "JoinNode {}: snapshot has {} buffers, node has {}",
                self.label,
                arr.len(),
                self.bufs.len()
            )));
        }
        for (buf, bj) in self.bufs.iter_mut().zip(arr) {
            buf.restore_items(bj)?;
        }
        self.rr = RrToken::from_json(j.get("rr")?)?;
        Ok(())
    }
}

/// A round-robin merging join (see [`JoinNode`]).
pub fn join<P: Payload>(
    label: impl Into<String>,
    inputs: Vec<ChannelId>,
    output: ChannelId,
    buf_capacity: usize,
) -> JoinNode<P> {
    let bufs = inputs
        .iter()
        .map(|_| Fifo::bounded(buf_capacity.max(1)))
        .collect();
    JoinNode {
        label: label.into(),
        inputs,
        output,
        bufs,
        rr: RrToken::new(),
    }
}

/// Alias for [`join`]: an N-requester round-robin arbiter over one shared
/// resource is exactly a merging join.
pub fn arbiter<P: Payload>(
    label: impl Into<String>,
    inputs: Vec<ChannelId>,
    output: ChannelId,
    buf_capacity: usize,
) -> JoinNode<P> {
    join(label, inputs, output, buf_capacity)
}
