//! Ready/valid channels: the wires of the combinator layer.

use flumen_sim::{FromJson, Json, JsonError, ToJson};
use std::collections::VecDeque;

/// Handle to one channel inside a [`Channels`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// The channel's dense index — also its link id in
    /// [`NetStats::link_busy`](crate::NetStats::link_busy) for composed
    /// fabrics.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Credits published for an always-ready consumer (endpoint egress).
/// Large enough to never throttle, small enough that credit arithmetic
/// cannot overflow.
pub(crate) const CREDIT_UNBOUNDED: usize = usize::MAX / 2;

/// One latency-insensitive channel.
///
/// Items ride as `(available_at, payload)` pairs; latency is at least one
/// cycle, which is what makes the evaluation order of producers and
/// consumers within a cycle unobservable (a send can never be consumed in
/// the cycle it was issued).
#[derive(Debug)]
struct Channel<P> {
    /// Wire latency added to every send, cycles (≥ 1).
    latency: u64,
    /// Maximum items in flight (pipelining depth of the wire).
    capacity: usize,
    /// In-flight items, FIFO order.
    queue: VecDeque<(u64, P)>,
    /// Credits the consumer published this cycle (free buffer slots).
    /// Transient — recomputed every cycle in the ready phase, so it is
    /// not part of the snapshot.
    credits: usize,
    /// The item handed over this cycle, awaiting consumer pickup.
    delivered: Option<P>,
    /// Cycles a due head waited because the consumer had no credit.
    stalls: u64,
    /// Completed handshakes.
    transfers: u64,
}

/// The channel arena a composed fabric evaluates over.
///
/// All channels live in one dense vector so nodes refer to them by
/// [`ChannelId`] — the borrow-friendly shape for a graph where every node
/// touches several channels each cycle.
#[derive(Debug, Default)]
pub struct Channels<P> {
    chans: Vec<Channel<P>>,
}

impl<P> Channels<P> {
    /// An empty arena.
    pub fn new() -> Self {
        Channels { chans: Vec::new() }
    }

    /// Adds a channel with the given wire latency (clamped to ≥ 1; see
    /// the module docs for why zero-latency channels are not allowed)
    /// and in-flight capacity (clamped to ≥ 1).
    pub fn add(&mut self, latency: u64, capacity: usize) -> ChannelId {
        let id = ChannelId(self.chans.len());
        self.chans.push(Channel {
            latency: latency.max(1),
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            credits: 0,
            delivered: None,
            stalls: 0,
            transfers: 0,
        });
        id
    }

    /// Number of channels (the composed fabric's link count).
    pub fn len(&self) -> usize {
        self.chans.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.chans.is_empty()
    }

    /// Publishes the consumer's free buffer slots for this cycle
    /// (phase 1 of the evaluation order).
    pub fn publish_credits(&mut self, id: ChannelId, credits: usize) {
        if let Some(ch) = self.chans.get_mut(id.0) {
            ch.credits = credits.min(CREDIT_UNBOUNDED);
        }
    }

    /// Credits published this cycle, minus items already in flight or
    /// delivered — the slots a producer may still claim. Producers gate
    /// sends on this, so admission is a pure function of last cycle's
    /// consumer state.
    pub fn effective_credits(&self, id: ChannelId) -> usize {
        match self.chans.get(id.0) {
            Some(ch) => ch
                .credits
                .saturating_sub(ch.queue.len() + usize::from(ch.delivered.is_some())),
            None => 0,
        }
    }

    /// Whether the wire itself has room for another send.
    pub fn can_send(&self, id: ChannelId) -> bool {
        self.chans
            .get(id.0)
            .is_some_and(|ch| ch.queue.len() < ch.capacity)
    }

    /// Sends a payload, arriving after the wire latency.
    pub fn send(&mut self, id: ChannelId, item: P, now: u64) {
        self.send_after(id, item, now, 0);
    }

    /// Sends a payload with `extra` cycles of producer-side delay
    /// (serialization time) in front of the wire latency.
    pub fn send_after(&mut self, id: ChannelId, item: P, now: u64, extra: u64) {
        if let Some(ch) = self.chans.get_mut(id.0) {
            debug_assert!(ch.queue.len() < ch.capacity, "send past channel capacity");
            ch.queue.push_back((now + extra + ch.latency, item));
        }
    }

    /// Phase 3: every channel whose head is due hands it to the consumer
    /// if a credit is available; otherwise the stall counter advances.
    /// Returns the ids that stalled this cycle (for backpressure traces).
    pub fn deliver_due(&mut self, now: u64) -> Vec<ChannelId> {
        let mut stalled = Vec::new();
        for (i, ch) in self.chans.iter_mut().enumerate() {
            let head_due = ch.queue.front().is_some_and(|(at, _)| *at <= now);
            if !head_due {
                continue;
            }
            if ch.delivered.is_none() && ch.credits > 0 {
                ch.delivered = ch.queue.pop_front().map(|(_, p)| p);
                ch.credits -= 1;
                ch.transfers += 1;
            } else {
                ch.stalls += 1;
                stalled.push(ChannelId(i));
            }
        }
        stalled
    }

    /// Consumer pickup of this cycle's delivered item (phase 4).
    pub fn take(&mut self, id: ChannelId) -> Option<P> {
        self.chans.get_mut(id.0).and_then(|ch| ch.delivered.take())
    }

    /// Defensive end-of-cycle sweep: an unconsumed delivered item is put
    /// back at the head of its queue, immediately due next cycle. A
    /// well-formed node never leaves one behind (it only earns a
    /// delivery by publishing a credit), but a buggy node must not
    /// silently drop payloads.
    pub fn requeue_undelivered(&mut self, now: u64) {
        for ch in &mut self.chans {
            if let Some(p) = ch.delivered.take() {
                ch.queue.push_front((now, p));
            }
        }
    }

    /// Total payloads somewhere in the arena (queues + delivered slots).
    pub fn pending(&self) -> usize {
        self.chans
            .iter()
            .map(|ch| ch.queue.len() + usize::from(ch.delivered.is_some()))
            .sum()
    }

    /// Total handshake stalls across all channels.
    pub fn stalls_total(&self) -> u64 {
        self.chans.iter().map(|ch| ch.stalls).sum()
    }

    /// Total completed handshakes across all channels.
    pub fn transfers_total(&self) -> u64 {
        self.chans.iter().map(|ch| ch.transfers).sum()
    }

    /// Handshake stalls accumulated on one channel.
    pub fn stalls(&self, id: ChannelId) -> u64 {
        self.chans.get(id.0).map_or(0, |ch| ch.stalls)
    }
}

impl<P: ToJson> Channels<P> {
    /// Serializes every channel's evolving state (queue contents and
    /// handshake counters; latency/capacity are geometry).
    pub fn snapshot(&self) -> Json {
        Json::Arr(
            self.chans
                .iter()
                .map(|ch| {
                    Json::obj([
                        ("queue", ch.queue.to_json()),
                        ("stalls", ch.stalls.to_json()),
                        ("transfers", ch.transfers.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

impl<P: FromJson> Channels<P> {
    /// Restores channel state in place. The arena must already have the
    /// same channel count as the snapshot (same built topology).
    pub fn restore(&mut self, j: &Json) -> Result<(), JsonError> {
        let arr = j.as_arr()?;
        if arr.len() != self.chans.len() {
            return Err(JsonError(format!(
                "Channels: snapshot has {} channels, topology has {}",
                arr.len(),
                self.chans.len()
            )));
        }
        for (ch, cj) in self.chans.iter_mut().zip(arr) {
            ch.queue = VecDeque::from_json(cj.get("queue")?)?;
            ch.stalls = u64::from_json(cj.get("stalls")?)?;
            ch.transfers = u64::from_json(cj.get("transfers")?)?;
            ch.credits = 0;
            ch.delivered = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_needs_credit() {
        let mut chans: Channels<u32> = Channels::new();
        let c = chans.add(1, 4);
        chans.send(c, 7, 0);
        // No credit published: the due head stalls.
        assert!(chans.deliver_due(1).contains(&c));
        assert_eq!(chans.take(c), None);
        assert_eq!(chans.stalls(c), 1);
        // With a credit it transfers.
        chans.publish_credits(c, 1);
        assert!(chans.deliver_due(1).is_empty());
        assert_eq!(chans.take(c), Some(7));
        assert_eq!(chans.transfers_total(), 1);
    }

    #[test]
    fn latency_is_at_least_one() {
        let mut chans: Channels<u32> = Channels::new();
        let c = chans.add(0, 4);
        chans.publish_credits(c, 1);
        chans.send(c, 1, 5);
        // Not due in the send cycle, due one later.
        chans.deliver_due(5);
        assert_eq!(chans.take(c), None);
        chans.publish_credits(c, 1);
        chans.deliver_due(6);
        assert_eq!(chans.take(c), Some(1));
    }

    #[test]
    fn effective_credits_subtract_in_flight() {
        let mut chans: Channels<u32> = Channels::new();
        let c = chans.add(1, 8);
        chans.publish_credits(c, 2);
        assert_eq!(chans.effective_credits(c), 2);
        chans.send(c, 1, 0);
        assert_eq!(chans.effective_credits(c), 1);
        chans.send(c, 2, 0);
        assert_eq!(chans.effective_credits(c), 0);
    }

    #[test]
    fn requeue_preserves_unconsumed_delivery() {
        let mut chans: Channels<u32> = Channels::new();
        let c = chans.add(1, 4);
        chans.publish_credits(c, 1);
        chans.send(c, 9, 0);
        chans.deliver_due(1);
        // Consumer forgot to take: the item survives to the next cycle.
        chans.requeue_undelivered(1);
        assert_eq!(chans.pending(), 1);
        chans.publish_credits(c, 1);
        chans.deliver_due(2);
        assert_eq!(chans.take(c), Some(9));
    }

    #[test]
    fn snapshot_round_trip() {
        let mut chans: Channels<u32> = Channels::new();
        let a = chans.add(1, 4);
        let _b = chans.add(2, 4);
        chans.send(a, 3, 0);
        chans.send(a, 4, 1);
        let snap = chans.snapshot().to_canonical();

        let mut fresh: Channels<u32> = Channels::new();
        let _ = fresh.add(1, 4);
        let _ = fresh.add(2, 4);
        fresh
            .restore(&Json::parse(&snap).expect("parse"))
            .expect("restore");
        assert_eq!(fresh.snapshot().to_canonical(), snap);
        assert_eq!(fresh.pending(), 2);

        // Wrong channel count is rejected.
        let mut short: Channels<u32> = Channels::new();
        let _ = short.add(1, 4);
        assert!(short.restore(&Json::parse(&snap).expect("parse")).is_err());
    }
}
