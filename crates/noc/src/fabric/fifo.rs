//! The buffering primitive shared by the legacy fabrics and the
//! combinator layer.

use flumen_sim::{FromJson, Json, JsonError, ToJson};
use std::collections::VecDeque;

/// A FIFO of payloads with optional bounded capacity.
///
/// Serializes exactly like the `VecDeque` it wraps (a JSON array of
/// items), so the hand-written fabrics swapped their raw queues for
/// `Fifo` without changing a byte of any checkpoint. Capacity is
/// construction-time geometry, deliberately not serialized — restore
/// happens into an already-constructed topology.
#[derive(Debug, Clone)]
pub struct Fifo<P> {
    items: VecDeque<P>,
    capacity: Option<usize>,
}

impl<P> Fifo<P> {
    /// A FIFO with no capacity limit (open-loop source queues).
    pub fn unbounded() -> Self {
        Fifo {
            items: VecDeque::new(),
            capacity: None,
        }
    }

    /// A FIFO holding at most `capacity` items.
    pub fn bounded(capacity: usize) -> Self {
        Fifo {
            items: VecDeque::new(),
            capacity: Some(capacity),
        }
    }

    /// Appends an item; returns `false` (item dropped by the caller's
    /// choice to check first) when the FIFO is full.
    pub fn push_back(&mut self, item: P) -> bool {
        if self.is_full() {
            return false;
        }
        self.items.push_back(item);
        true
    }

    /// Removes and returns the oldest item.
    pub fn pop_front(&mut self) -> Option<P> {
        self.items.pop_front()
    }

    /// The oldest item, if any.
    pub fn front(&self) -> Option<&P> {
        self.items.front()
    }

    /// Queue occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether another `push_back` would be refused.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.items.len() >= c)
    }

    /// Free slots remaining (`usize::MAX` when unbounded) — the credit
    /// count a consumer publishes on its input channel.
    pub fn free_slots(&self) -> usize {
        match self.capacity {
            Some(c) => c.saturating_sub(self.items.len()),
            None => usize::MAX,
        }
    }

    /// The configured capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &P> {
        self.items.iter()
    }
}

impl<P: FromJson> Fifo<P> {
    /// Restores the queue contents in place, keeping the configured
    /// capacity (checkpoint restore happens into a freshly-built
    /// topology whose geometry is not serialized).
    pub fn restore_items(&mut self, j: &Json) -> Result<(), JsonError> {
        self.items = VecDeque::from_json(j)?;
        Ok(())
    }
}

impl<P: ToJson> ToJson for Fifo<P> {
    fn to_json(&self) -> Json {
        self.items.to_json()
    }
}

impl<P: FromJson> FromJson for Fifo<P> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Fifo {
            items: VecDeque::from_json(j)?,
            capacity: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_refuses_overflow() {
        let mut f = Fifo::bounded(2);
        assert!(f.push_back(1));
        assert!(f.push_back(2));
        assert!(!f.push_back(3));
        assert_eq!(f.len(), 2);
        assert_eq!(f.free_slots(), 0);
        assert_eq!(f.pop_front(), Some(1));
        assert_eq!(f.free_slots(), 1);
    }

    #[test]
    fn unbounded_always_accepts() {
        let mut f = Fifo::unbounded();
        for i in 0..100 {
            assert!(f.push_back(i));
        }
        assert_eq!(f.free_slots(), usize::MAX);
        assert_eq!(f.capacity(), None);
    }

    #[test]
    fn json_matches_vecdeque() {
        let mut f: Fifo<u64> = Fifo::bounded(8);
        f.push_back(3);
        f.push_back(7);
        let mut v: VecDeque<u64> = VecDeque::new();
        v.push_back(3);
        v.push_back(7);
        assert_eq!(f.to_json().to_canonical(), v.to_json().to_canonical());
        let back = Fifo::<u64>::from_json(&f.to_json()).unwrap();
        assert_eq!(back.iter().copied().collect::<Vec<_>>(), vec![3, 7]);
    }
}
