//! Time-tagged in-flight buffers (items on a wire).

use flumen_sim::{FromJson, Json, JsonError, ToJson};

/// Items in flight, each tagged with its arrival cycle.
///
/// The drain order is *position-dependent*: [`FlightBuffer::drain_due`]
/// scans with `swap_remove`, exactly like the open-coded loops it
/// replaced in the legacy fabrics, so downstream delivery order (and
/// therefore every RNG/stat sequence) is preserved bit-for-bit. The
/// serialized form is the plain `Vec<(u64, T)>` in its exact order.
#[derive(Debug, Clone)]
pub struct FlightBuffer<T> {
    entries: Vec<(u64, T)>,
}

impl<T> FlightBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        FlightBuffer {
            entries: Vec::new(),
        }
    }

    /// Adds an item arriving at cycle `at`.
    pub fn push(&mut self, at: u64, item: T) {
        self.entries.push((at, item));
    }

    /// Removes every item with `at ≤ now`, invoking `f` on each in
    /// swap-remove scan order (the legacy fabrics' exact order).
    pub fn drain_due(&mut self, now: u64, mut f: impl FnMut(T)) {
        let mut i = 0;
        while i < self.entries.len() {
            let due = self.entries.get(i).is_some_and(|(at, _)| *at <= now);
            if due {
                let (_, item) = self.entries.swap_remove(i);
                f(item);
            } else {
                i += 1;
            }
        }
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw entries in their exact positional order (checkpoints).
    pub fn entries(&self) -> &[(u64, T)] {
        &self.entries
    }

    /// Rebuilds the buffer from checkpointed entries, preserving order.
    pub fn from_entries(entries: Vec<(u64, T)>) -> Self {
        FlightBuffer { entries }
    }
}

impl<T> Default for FlightBuffer<T> {
    fn default() -> Self {
        FlightBuffer::new()
    }
}

impl<T: ToJson> ToJson for FlightBuffer<T> {
    fn to_json(&self) -> Json {
        self.entries.to_json()
    }
}

impl<T: FromJson> FromJson for FlightBuffer<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(FlightBuffer {
            entries: Vec::from_json(j)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_matches_swap_remove_order() {
        // Reference: the open-coded loop the legacy fabrics used.
        let seed: Vec<(u64, u32)> = vec![(5, 0), (1, 1), (1, 2), (9, 3), (0, 4)];
        let mut reference = seed.clone();
        let mut ref_order = Vec::new();
        let mut i = 0;
        while i < reference.len() {
            if reference[i].0 <= 1 {
                ref_order.push(reference.swap_remove(i).1);
            } else {
                i += 1;
            }
        }

        let mut fb = FlightBuffer::new();
        for (at, item) in seed {
            fb.push(at, item);
        }
        let mut got = Vec::new();
        fb.drain_due(1, |item| got.push(item));
        assert_eq!(got, ref_order);
        assert_eq!(fb.len(), 2);
    }

    #[test]
    fn json_matches_vec_of_tuples() {
        let mut fb = FlightBuffer::new();
        fb.push(3, 10u64);
        fb.push(1, 20u64);
        let v: Vec<(u64, u64)> = vec![(3, 10), (1, 20)];
        assert_eq!(fb.to_json().to_canonical(), v.to_json().to_canonical());
        let back = FlightBuffer::<u64>::from_json(&fb.to_json()).unwrap();
        assert_eq!(back.entries(), fb.entries());
    }
}
