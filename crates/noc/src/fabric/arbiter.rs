//! Round-robin arbitration as a reusable value.

use flumen_sim::{FromJson, Json, JsonError, ToJson};

/// A rotating round-robin token over `n` requesters.
///
/// Two idioms are supported, matching the two hand-written fabrics:
///
/// * **grant-rotate** (optical bus): scan from the token, grant the first
///   requester, then park the token just past the winner
///   ([`RrToken::grant`]).
/// * **cycle-rotate** (routed networks): scan all ports from the token
///   each cycle, then advance the token by one regardless of grants
///   ([`RrToken::rotate`]).
///
/// Serializes as its raw position (a JSON number), byte-identical to the
/// bare `usize` fields it replaced in the legacy fabrics' checkpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RrToken {
    pos: usize,
}

impl RrToken {
    /// A token starting at position 0.
    pub fn new() -> Self {
        RrToken::default()
    }

    /// Current token position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Forces the token position (checkpoint restore).
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Indices `pos, pos+1, …` wrapping over `n` requesters — the fair
    /// scan order for this cycle. Empty when `n == 0`.
    pub fn scan(&self, n: usize) -> impl Iterator<Item = usize> {
        let pos = self.pos;
        (0..n).map(move |k| (pos + k) % n)
    }

    /// Parks the token just past `winner` (grant-rotate idiom).
    pub fn grant(&mut self, winner: usize, n: usize) {
        self.pos = match n {
            0 => 0,
            _ => (winner + 1) % n,
        };
    }

    /// Advances the token by one position (cycle-rotate idiom).
    pub fn rotate(&mut self, n: usize) {
        self.pos = match n {
            0 => 0,
            _ => (self.pos + 1) % n,
        };
    }
}

impl ToJson for RrToken {
    fn to_json(&self) -> Json {
        self.pos.to_json()
    }
}

impl FromJson for RrToken {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(RrToken {
            pos: usize::from_json(j)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_starts_at_token() {
        let mut t = RrToken::new();
        t.set_pos(2);
        assert_eq!(t.scan(4).collect::<Vec<_>>(), vec![2, 3, 0, 1]);
        assert_eq!(t.scan(0).count(), 0);
    }

    #[test]
    fn grant_parks_past_winner() {
        let mut t = RrToken::new();
        t.grant(3, 4);
        assert_eq!(t.pos(), 0);
        t.grant(1, 4);
        assert_eq!(t.pos(), 2);
    }

    #[test]
    fn rotate_advances_by_one() {
        let mut t = RrToken::new();
        t.rotate(3);
        t.rotate(3);
        t.rotate(3);
        assert_eq!(t.pos(), 0);
    }

    #[test]
    fn json_matches_bare_usize() {
        let mut t = RrToken::new();
        t.set_pos(5);
        assert_eq!(t.to_json().to_canonical(), 5usize.to_json().to_canonical());
        assert_eq!(RrToken::from_json(&t.to_json()).unwrap().pos(), 5);
    }
}
