//! A 2-D torus, declaratively composed — the combinator layer's payoff.
//!
//! Wrap-around links give the torus half the mesh's average hop count at
//! equal radix; dimension-order routing plus the routers' bubble rule
//! keep every unidirectional ring deadlock-free. The entire topology is
//! the channel grid, one [`RouterNode`] per node, and the routing
//! closure below — snapshot/restore, tracing, and the generic
//! conservation proptests come from the layer, not from this file.

use super::graph::{ComposedFabric, Endpoint, FabricBuilder};
use super::router::{RouterNode, RouterTiming, DIM_LOCAL};
use crate::routed::RoutedConfig;
use crate::Result;

/// In/out port order per router: `+X, -X, +Y, -Y`, then local.
const DIMS: [usize; 4] = [0, 0, 1, 1];

/// Dimension-order route: correct X first (shorter wrap direction, ties
/// break toward `+`), then Y, then eject. Port indices follow [`DIMS`].
fn dor(at: usize, dst: usize, width: usize, height: usize) -> usize {
    let (ax, ay) = (at % width, at / width);
    let (dx, dy) = (dst % width, dst / width);
    if ax != dx {
        let fwd = (dx + width - ax) % width;
        if fwd <= width / 2 {
            0
        } else {
            1
        }
    } else if ay != dy {
        let fwd = (dy + height - ay) % height;
        if fwd <= height / 2 {
            2
        } else {
            3
        }
    } else {
        4
    }
}

/// Builds a `width × height` torus with dimension-order routing from
/// [`RoutedConfig`] timing parameters.
///
/// # Errors
///
/// Returns [`NocError::InvalidTopology`](crate::NocError::InvalidTopology)
/// for shapes smaller than 2×2.
pub fn torus(width: usize, height: usize, cfg: &RoutedConfig) -> Result<ComposedFabric> {
    if width < 2 || height < 2 {
        return Err(crate::NocError::InvalidTopology {
            reason: "torus needs ≥ 2×2".into(),
        });
    }
    let n = width * height;
    let timing = RouterTiming {
        link_bits_per_cycle: cfg.link_bits_per_cycle,
        router_delay: cfg.router_delay,
        input_queue_pkts: cfg.input_queue_pkts,
    };
    let mut b = FabricBuilder::new();
    // One channel per directed link, landing on the receiver's in port:
    // `into[node][d]` carries traffic arriving at `node` on port `d`.
    let into: Vec<Vec<_>> = (0..n)
        .map(|_| {
            (0..4)
                .map(|_| b.channel(cfg.link_latency, cfg.input_queue_pkts))
                .collect()
        })
        .collect();
    let endpoints: Vec<Endpoint> = (0..n)
        .map(|_| Endpoint {
            ingress: b.channel(1, 2),
            egress: b.channel(1, 4),
        })
        .collect();
    for node in 0..n {
        let (x, y) = (node % width, node / width);
        let xp = y * width + (x + 1) % width; // +X neighbor
        let xm = y * width + (x + width - 1) % width; // -X neighbor
        let yp = ((y + 1) % height) * width + x; // +Y neighbor
        let ym = ((y + height - 1) % height) * width + x; // -Y neighbor
                                                          // A flit moving +X leaves toward `xp` and arrives there on the
                                                          // port facing -X traffic's origin — port 0 by convention: the
                                                          // in-port index encodes the direction of travel, not the side.
        let outs = vec![into[xp][0], into[xm][1], into[yp][2], into[ym][3]];
        let ins: Vec<_> = (0..4).map(|d| into[node][d]).collect();
        let mut in_ports = ins;
        in_ports.push(endpoints[node].ingress);
        let mut out_ports = outs;
        out_ports.push(endpoints[node].egress);
        let mut dims = DIMS.to_vec();
        dims.push(DIM_LOCAL);
        let route = move |dst: usize| dor(node, dst, width, height);
        b.add(RouterNode::new(
            node,
            timing,
            in_ports,
            out_ports,
            dims.clone(),
            dims,
            route,
        ));
    }
    Ok(ComposedFabric::new("torus", b.build(endpoints)?))
}

/// A 4×4 torus with Table 1 electrical parameters.
pub fn torus_4x4() -> ComposedFabric {
    // flumen-check: allow(no-panic-hot-path) — fixed 4×4 shape, valid by construction
    torus(4, 4, &RoutedConfig::default()).expect("4x4 torus is valid")
}
