//! # flumen-noc
//!
//! A cycle-level network-on-package simulator standing in for Booksim in
//! the Flumen reproduction. Four topologies are modelled (paper Fig. 10):
//!
//! * [`RoutedNetwork`] — electrical **ring** and **mesh** with input-queued
//!   routers, XY / shortest-direction routing, bubble flow control and
//!   finite buffers.
//! * [`OpticalBus`] — shared circular waveguides with token arbitration
//!   (Corona-style), native optical multicast.
//! * [`MzimCrossbar`] — the Flumen fabric as a non-blocking crossbar with a
//!   wavefront arbiter, per-connection reconfiguration cost, physical
//!   multicast, and wire reservation for compute partitions.
//!
//! The [`harness`] module measures latency-vs-load curves (paper Fig. 11)
//! and runs explicit packet schedules (paper Fig. 1). Both drive any
//! [`Network`], including fabrics composed from the latency-insensitive
//! ready/valid combinators in [`fabric`] — see [`fabric::torus`] for a
//! 2-D torus defined in under 100 lines of composition.
//!
//! # Example
//!
//! ```
//! use flumen_noc::harness::{measure_point, RunConfig};
//! use flumen_noc::traffic::TrafficPattern;
//! use flumen_noc::MzimCrossbar;
//!
//! let cfg = RunConfig { warmup: 200, measure: 1_000, ..RunConfig::default() };
//! let mut net = MzimCrossbar::flumen_16();
//! let pt = measure_point(&mut net, TrafficPattern::UniformRandom, 0.1, &cfg);
//! assert!(!pt.saturated);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod crossbar;
mod error;
pub mod fabric;
pub mod harness;
mod packet;
mod routed;
mod stats;
pub mod traffic;
mod wavefront;

pub use bus::{BusConfig, OpticalBus};
pub use crossbar::{CrossbarConfig, MzimCrossbar};
pub use error::{NocError, Result};
pub use fabric::{torus, ComposedFabric};
pub use packet::{Delivery, Packet};
pub use routed::{RoutedConfig, RoutedNetwork, RoutedTopology};
pub use stats::NetStats;
pub use wavefront::WavefrontArbiter;

/// A cycle-steppable network.
///
/// All four topologies implement this; the system simulator drives them
/// interchangeably.
pub trait Network {
    /// Installs a trace sink. Every topology emits per-packet `pkt` async
    /// spans (inject → one end per destination) through it; the disabled
    /// default handle makes instrumentation free. The default method
    /// ignores the handle so minimal implementations stay valid.
    fn set_tracer(&mut self, _tracer: flumen_trace::TraceHandle) {}
    /// Endpoint count.
    fn num_nodes(&self) -> usize;
    /// Queues a packet at its source (open-loop: the source queue is
    /// unbounded and latency is measured from `Packet::created_at`).
    fn inject(&mut self, pkt: Packet);
    /// Advances one cycle; returns packets delivered during it.
    fn step(&mut self) -> Vec<Delivery>;
    /// Current cycle.
    fn cycle(&self) -> u64;
    /// Statistics accumulated so far.
    fn stats(&self) -> &NetStats;
    /// Mutable statistics (for warmup resets).
    fn stats_mut(&mut self) -> &mut NetStats;
    /// Packets somewhere in the network (source queues + in flight).
    fn pending(&self) -> usize;
}
