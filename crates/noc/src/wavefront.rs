//! Wavefront allocator.
//!
//! The classic single-cycle hardware matcher for input-queued crossbars:
//! requests form an `N×N` matrix and grants are issued along anti-diagonals
//! starting from a rotating priority diagonal, so at most one grant lands in
//! each row and column and no starvation occurs. The Flumen MZIM control
//! unit builds its communication maps with exactly this arbiter
//! (paper §3.4) plus multicast extensions.

/// A wavefront arbiter over `n` inputs × `n` outputs.
#[derive(Debug, Clone)]
pub struct WavefrontArbiter {
    n: usize,
    priority: usize,
}

impl WavefrontArbiter {
    /// Creates an arbiter for an `n×n` crossbar.
    pub fn new(n: usize) -> Self {
        WavefrontArbiter { n, priority: 0 }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current priority-diagonal position (checkpoint state).
    pub fn priority(&self) -> usize {
        self.priority
    }

    /// Restores the priority diagonal from a checkpoint. Values are taken
    /// modulo `n` so a foreign snapshot cannot put the arbiter out of range.
    pub fn set_priority(&mut self, p: usize) {
        self.priority = p % self.n.max(1);
    }

    /// Computes a maximal-ish matching for the given request matrix.
    /// `requests[i]` lists the outputs input `i` wants (usually one — the
    /// head packet's destination). Returns `grants[i] = Some(output)`.
    ///
    /// Rows/columns already claimed by `row_busy`/`col_busy` (connections
    /// held by in-flight packets) are skipped. The priority diagonal
    /// advances on every call for fairness.
    pub fn arbitrate(
        &mut self,
        requests: &[Vec<usize>],
        row_busy: &[bool],
        col_busy: &[bool],
    ) -> Vec<Option<usize>> {
        assert_eq!(requests.len(), self.n);
        let n = self.n;
        let mut grants: Vec<Option<usize>> = vec![None; n];
        let mut col_taken: Vec<bool> = col_busy.to_vec();
        let mut row_taken: Vec<bool> = row_busy.to_vec();

        // Walk n anti-diagonals starting at the priority diagonal.
        for d in 0..n {
            let diag = (self.priority + d) % n;
            for i in 0..n {
                let j = (diag + n - i) % n;
                if row_taken[i] || col_taken[j] {
                    continue;
                }
                if requests[i].contains(&j) {
                    grants[i] = Some(j);
                    row_taken[i] = true;
                    col_taken[j] = true;
                }
            }
        }
        self.priority = (self.priority + 1) % n;
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_a_matching() {
        let mut a = WavefrontArbiter::new(4);
        let reqs = vec![vec![0, 1], vec![0], vec![0], vec![3]];
        let g = a.arbitrate(&reqs, &[false; 4], &[false; 4]);
        // No two inputs share an output.
        let mut used = [false; 4];
        for gi in g.iter().flatten() {
            assert!(!used[*gi]);
            used[*gi] = true;
        }
        // Input 3 must get output 3 (uncontended).
        assert_eq!(g[3], Some(3));
    }

    #[test]
    fn conflict_free_requests_all_granted() {
        let mut a = WavefrontArbiter::new(4);
        let reqs = vec![vec![1], vec![2], vec![3], vec![0]];
        let g = a.arbitrate(&reqs, &[false; 4], &[false; 4]);
        assert_eq!(g, vec![Some(1), Some(2), Some(3), Some(0)]);
    }

    #[test]
    fn busy_rows_and_cols_skipped() {
        let mut a = WavefrontArbiter::new(3);
        let reqs = vec![vec![0], vec![1], vec![2]];
        let g = a.arbitrate(&reqs, &[true, false, false], &[false, true, false]);
        assert_eq!(g[0], None); // row busy
        assert_eq!(g[1], None); // wants busy col
        assert_eq!(g[2], Some(2));
    }

    #[test]
    fn priority_rotates_for_fairness() {
        let mut a = WavefrontArbiter::new(2);
        // Both inputs want output 0 forever; grants must alternate.
        let reqs = vec![vec![0], vec![0]];
        let mut winners = Vec::new();
        for _ in 0..4 {
            let g = a.arbitrate(&reqs, &[false; 2], &[false; 2]);
            let w = g.iter().position(|x| x.is_some()).unwrap();
            winners.push(w);
        }
        assert!(winners.contains(&0) && winners.contains(&1), "{winners:?}");
    }

    #[test]
    fn empty_requests_no_grants() {
        let mut a = WavefrontArbiter::new(3);
        let g = a.arbitrate(&vec![vec![]; 3], &[false; 3], &[false; 3]);
        assert!(g.iter().all(|x| x.is_none()));
    }
}
