//! Property-based tests for the NoC simulator: conservation, delivery and
//! fairness invariants that must hold on every topology.

use flumen_noc::traffic::TrafficPattern;
use flumen_noc::{
    BusConfig, CrossbarConfig, MzimCrossbar, Network, OpticalBus, Packet, RoutedConfig,
    RoutedNetwork, RoutedTopology, WavefrontArbiter,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every injected packet is eventually delivered, exactly once, to its
/// destination — on every topology, for arbitrary traffic.
fn check_conservation<N: Network>(mut net: N, seed: u64, packets: usize) -> Result<(), String> {
    let n = net.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut expected: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for id in 0..packets as u64 {
        let src = rng.gen_range(0..n);
        let mut dst = rng.gen_range(0..n);
        if dst == src {
            dst = (dst + 1) % n;
        }
        let bits = [128u32, 512, 1024][rng.gen_range(0..3)];
        let at = rng.gen_range(0..64u64);
        expected.insert(id, dst);
        net.inject(Packet::new(id, src, dst, bits, at));
    }
    let mut delivered = std::collections::HashMap::new();
    for _ in 0..500_000u64 {
        for d in net.step() {
            if delivered.insert(d.packet.id, d.packet.dst).is_some() {
                return Err(format!("packet {} delivered twice", d.packet.id));
            }
        }
        if net.pending() == 0 {
            break;
        }
    }
    if net.pending() != 0 {
        return Err("network failed to drain".into());
    }
    if delivered.len() != expected.len() {
        return Err(format!(
            "{} of {} delivered",
            delivered.len(),
            expected.len()
        ));
    }
    for (id, dst) in expected {
        if delivered.get(&id) != Some(&dst) {
            return Err(format!("packet {id} arrived at the wrong node"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_conserves_packets(seed in any::<u32>(), packets in 1usize..120) {
        check_conservation(RoutedNetwork::ring_16(), seed as u64, packets).unwrap();
    }

    #[test]
    fn mesh_conserves_packets(seed in any::<u32>(), packets in 1usize..120) {
        check_conservation(RoutedNetwork::mesh_4x4(), seed as u64, packets).unwrap();
    }

    #[test]
    fn optbus_conserves_packets(seed in any::<u32>(), packets in 1usize..120) {
        check_conservation(OpticalBus::optbus_16(), seed as u64, packets).unwrap();
    }

    #[test]
    fn crossbar_conserves_packets(seed in any::<u32>(), packets in 1usize..120) {
        check_conservation(MzimCrossbar::flumen_16(), seed as u64, packets).unwrap();
    }

    #[test]
    fn odd_sized_networks_work(nodes in 3usize..12, seed in any::<u32>()) {
        check_conservation(
            RoutedNetwork::new(RoutedTopology::Ring { nodes }, RoutedConfig::default()).unwrap(),
            seed as u64,
            40,
        )
        .unwrap();
        check_conservation(
            OpticalBus::new(nodes, BusConfig::default()).unwrap(),
            seed as u64,
            40,
        )
        .unwrap();
        check_conservation(
            MzimCrossbar::new(nodes, CrossbarConfig::default()).unwrap(),
            seed as u64,
            40,
        )
        .unwrap();
    }

    #[test]
    fn latency_measured_from_creation(seed in any::<u32>()) {
        // A packet created early but injected into a busy network must
        // report latency ≥ any same-path packet created later.
        let mut net = MzimCrossbar::flumen_16();
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let dst = rng.gen_range(1..16);
        for k in 0..6u64 {
            net.inject(Packet::new(k, 0, dst, 2048, 0));
        }
        let mut lats = Vec::new();
        for _ in 0..10_000 {
            for d in net.step() {
                lats.push((d.packet.id, d.latency()));
            }
            if net.pending() == 0 { break; }
        }
        lats.sort_by_key(|&(id, _)| id);
        prop_assert!(lats.windows(2).all(|w| w[0].1 <= w[1].1), "{lats:?}");
    }

    #[test]
    fn traffic_patterns_are_valid_destinations(src in 0usize..64, n_pow in 2u32..7, seed in any::<u32>()) {
        let n = 1usize << n_pow;
        prop_assume!(src < n);
        let mut rng = StdRng::seed_from_u64(seed as u64);
        for p in TrafficPattern::all() {
            let d = p.destination(src, n, &mut rng);
            prop_assert!(d < n && d != src, "{} gave {d} for {src}/{n}", p.name());
        }
    }

    #[test]
    fn wavefront_grants_are_always_a_matching(n in 2usize..12, seed in any::<u32>()) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let requests: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let k = rng.gen_range(0..3);
                (0..k).map(|_| rng.gen_range(0..n)).collect()
            })
            .collect();
        let row_busy: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();
        let col_busy: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.2)).collect();
        let mut arb = WavefrontArbiter::new(n);
        let grants = arb.arbitrate(&requests, &row_busy, &col_busy);
        let mut used_out = vec![false; n];
        for (i, g) in grants.iter().enumerate() {
            if let Some(j) = g {
                prop_assert!(!row_busy[i], "granted a busy row");
                prop_assert!(!col_busy[*j], "granted a busy col");
                prop_assert!(requests[i].contains(j), "granted an unrequested output");
                prop_assert!(!used_out[*j], "output granted twice");
                used_out[*j] = true;
            }
        }
    }

    #[test]
    fn multicast_delivers_to_every_destination(seed in any::<u32>(), mask in 1u16..0xFFFF) {
        let mut net = MzimCrossbar::flumen_16();
        let dests: Vec<usize> = (0..16).filter(|i| mask >> i & 1 == 1 && *i != 0).collect();
        prop_assume!(!dests.is_empty());
        let _ = seed;
        net.inject(Packet::multicast(1, 0, &dests, 512, 0));
        let mut got = Vec::new();
        for _ in 0..5_000 {
            for d in net.step() {
                got.push(d.packet.dst);
            }
            if net.pending() == 0 { break; }
        }
        got.sort_unstable();
        prop_assert_eq!(got, dests);
    }
}
