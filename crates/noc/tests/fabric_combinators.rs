//! Integration tests for the latency-insensitive combinator layer:
//! pipelines stay live under random backpressure, fork/join conserve
//! payloads, the builder rejects mis-wired graphs, and composed graphs
//! snapshot/restore through their public API.

use flumen_noc::fabric::{
    comb, fifo, filter, fork, fsm, join, ComposedGraph, Endpoint, FabricBuilder, NodeCtx,
};
use flumen_noc::NetStats;
use flumen_trace::TraceHandle;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives a single-endpoint graph: feeds `feed` values (one per cycle as
/// credits allow), then runs until drained or `max_cycles`. Returns what
/// the egress produced, in order.
fn run_to_completion(graph: &mut ComposedGraph<u64>, feed: Vec<u64>, max_cycles: u64) -> Vec<u64> {
    let mut stats = NetStats::new(graph.channels().len());
    let tracer = TraceHandle::disabled();
    let mut ctx = NodeCtx {
        stats: &mut stats,
        tracer: &tracer,
    };
    let mut pending = feed.into_iter().collect::<std::collections::VecDeque<_>>();
    let mut got = Vec::new();
    for now in 0..max_cycles {
        let out = graph.step_cycle(now, &mut ctx, |_| pending.pop_front());
        got.extend(out.into_iter().map(|(_, v)| v));
        if pending.is_empty() && graph.pending() == 0 {
            break;
        }
    }
    got
}

/// comb ∘ fifo ∘ comb pipeline: values arrive transformed, in order.
#[test]
fn pipeline_transforms_in_order() {
    let mut b = FabricBuilder::new();
    let ingress = b.channel(1, 2);
    let a = b.channel(1, 2);
    let c = b.channel(2, 4);
    let egress = b.channel(1, 2);
    b.add(comb("double", ingress, a, |v: u64| v * 2));
    b.add(fifo("buf", a, c, 4));
    b.add(comb("inc", c, egress, |v: u64| v + 1));
    let mut g = b
        .build(vec![Endpoint { ingress, egress }])
        .expect("valid pipeline");
    let got = run_to_completion(&mut g, (0..20).collect(), 500);
    assert_eq!(got, (0..20).map(|v| v * 2 + 1).collect::<Vec<_>>());
}

/// fsm keeps running state across payloads (here: a running sum).
#[test]
fn fsm_carries_state() {
    let mut b = FabricBuilder::new();
    let ingress = b.channel(1, 2);
    let egress = b.channel(1, 2);
    b.add(fsm(
        "running-sum",
        ingress,
        egress,
        0u64,
        |_, acc: &mut u64, v: u64| {
            *acc += v;
            Some(*acc)
        },
    ));
    let mut g = b
        .build(vec![Endpoint { ingress, egress }])
        .expect("valid fsm graph");
    let got = run_to_completion(&mut g, vec![1, 2, 3, 4], 100);
    assert_eq!(got, vec![1, 3, 6, 10]);
}

/// filter drops non-matching payloads without wedging the handshake.
#[test]
fn filter_drops_without_deadlock() {
    let mut b = FabricBuilder::new();
    let ingress = b.channel(1, 2);
    let egress = b.channel(1, 2);
    b.add(filter("evens", ingress, egress, |v: &u64| {
        v.is_multiple_of(2)
    }));
    let mut g = b
        .build(vec![Endpoint { ingress, egress }])
        .expect("valid filter graph");
    let got = run_to_completion(&mut g, (0..10).collect(), 200);
    assert_eq!(got, vec![0, 2, 4, 6, 8]);
}

/// Builder rejects a channel nobody consumes, and one driven twice.
#[test]
fn builder_rejects_miswired_graphs() {
    // Dangling channel: no consumer.
    let mut b = FabricBuilder::<u64>::new();
    let ingress = b.channel(1, 2);
    let dangling = b.channel(1, 2);
    let egress = b.channel(1, 2);
    b.add(comb("ok", ingress, egress, |v: u64| v));
    let _ = dangling;
    assert!(b.build(vec![Endpoint { ingress, egress }]).is_err());

    // Double producer on one channel.
    let mut b = FabricBuilder::<u64>::new();
    let i1 = b.channel(1, 2);
    let i2 = b.channel(1, 2);
    let shared = b.channel(1, 2);
    let egress = b.channel(1, 2);
    b.add(comb("p1", i1, shared, |v: u64| v));
    b.add(comb("p2", i2, shared, |v: u64| v));
    b.add(comb("sink", shared, egress, |v: u64| v));
    assert!(b
        .build(vec![
            Endpoint {
                ingress: i1,
                egress
            },
            Endpoint {
                ingress: i2,
                egress
            },
        ])
        .is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// fork → join diamond conserves every payload under random feed
    /// bursts and tight buffers: nothing lost, nothing duplicated.
    #[test]
    fn fork_join_conserves_payloads(seed in any::<u32>(), count in 1usize..40) {
        let mut b = FabricBuilder::new();
        let ingress = b.channel(1, 1);
        let left = b.channel(1, 1);
        let right = b.channel(2, 1);
        let l2 = b.channel(1, 1);
        let r2 = b.channel(1, 1);
        let egress = b.channel(1, 2);
        b.add(fork("split", ingress, vec![left, right]));
        b.add(comb("l", left, l2, |v: u64| v));
        b.add(comb("r", right, r2, |v: u64| v));
        b.add(join("merge", vec![l2, r2], egress, 2));
        let mut g = b.build(vec![Endpoint { ingress, egress }]).expect("valid diamond");

        // Feed with random gaps so ready/valid sees every interleaving.
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let mut stats = NetStats::new(g.channels().len());
        let tracer = TraceHandle::disabled();
        let mut ctx = NodeCtx { stats: &mut stats, tracer: &tracer };
        let mut next = 0u64;
        let mut got = Vec::new();
        for now in 0..5_000u64 {
            let gap = rng.gen_range(0..3) == 0;
            let out = g.step_cycle(now, &mut ctx, |_| {
                if !gap && (next as usize) < count {
                    next += 1;
                    Some(next - 1)
                } else {
                    None
                }
            });
            got.extend(out.into_iter().map(|(_, v)| v));
            if next as usize == count && g.pending() == 0 {
                break;
            }
        }
        prop_assert_eq!(g.pending(), 0, "diamond failed to drain");
        // Each input value appears exactly twice (once per fork arm).
        got.sort_unstable();
        let expect: Vec<u64> = (0..count as u64).flat_map(|v| [v, v]).collect();
        prop_assert_eq!(got, expect);
    }

    /// Snapshot at a random cycle mid-pipeline, restore into a freshly
    /// built identical graph, and both must produce the same tail.
    #[test]
    fn composed_graph_snapshot_round_trips(seed in any::<u32>(), warm in 3u64..40) {
        let build = || {
            let mut b = FabricBuilder::new();
            let ingress = b.channel(1, 2);
            let mid = b.channel(2, 2);
            let egress = b.channel(1, 2);
            b.add(comb("x3", ingress, mid, |v: u64| v * 3));
            b.add(fifo("buf", mid, egress, 3));
            b.build(vec![Endpoint { ingress, egress }]).expect("valid pipeline")
        };
        let mut original = build();
        let mut stats = NetStats::new(original.channels().len());
        let tracer = TraceHandle::disabled();
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let mut next = 0u64;
        {
            let mut ctx = NodeCtx { stats: &mut stats, tracer: &tracer };
            for now in 0..warm {
                let feed = rng.gen_range(0..4) != 0;
                g_step(&mut original, now, &mut ctx, feed, &mut next);
            }
        }
        let snap = original.snapshot();

        let mut fresh = build();
        fresh.restore(&snap).expect("restore");
        prop_assert_eq!(fresh.snapshot().to_canonical(), snap.to_canonical());
        prop_assert_eq!(fresh.pending(), original.pending());

        // Identical tails from both instances under the same feed.
        let mut sa = NetStats::new(original.channels().len());
        let mut sb = NetStats::new(fresh.channels().len());
        let feeds: Vec<bool> = (0..60).map(|_| rng.gen_range(0..4) != 0).collect();
        let (mut na, mut nb) = (next, next);
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        {
            let mut ctx = NodeCtx { stats: &mut sa, tracer: &tracer };
            for (i, &f) in feeds.iter().enumerate() {
                ta.extend(g_step(&mut original, warm + i as u64, &mut ctx, f, &mut na));
            }
        }
        {
            let mut ctx = NodeCtx { stats: &mut sb, tracer: &tracer };
            for (i, &f) in feeds.iter().enumerate() {
                tb.extend(g_step(&mut fresh, warm + i as u64, &mut ctx, f, &mut nb));
            }
        }
        prop_assert_eq!(ta, tb);
    }
}

/// One step of a single-endpoint graph with an optional sequential feed.
fn g_step(
    g: &mut ComposedGraph<u64>,
    now: u64,
    ctx: &mut NodeCtx<'_>,
    feed: bool,
    next: &mut u64,
) -> Vec<u64> {
    g.step_cycle(now, ctx, |_| {
        if feed {
            *next += 1;
            Some(*next - 1)
        } else {
            None
        }
    })
    .into_iter()
    .map(|(_, v)| v)
    .collect()
}
