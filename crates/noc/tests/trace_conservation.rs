//! Property test: the trace stream proves flit conservation.
//!
//! Every fabric emits an AsyncBegin `pkt` event on injection and an
//! AsyncEnd per destination delivery. For any topology, traffic pattern
//! and load, [`flumen_trace::invariants::packet_conservation`] must
//! accept the recorded stream: every injected packet ejects exactly once
//! per destination, nothing is duplicated, nothing is lost.

use flumen_noc::harness::drain;
use flumen_noc::traffic::{BernoulliInjector, TrafficPattern};
use flumen_noc::{
    BusConfig, CrossbarConfig, MzimCrossbar, Network, OpticalBus, Packet, RoutedConfig,
    RoutedNetwork, RoutedTopology,
};
use flumen_trace::{invariants, EventKind, RecordingTracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives `net` under Bernoulli traffic for `warm` cycles, drains it,
/// and checks the recorded trace for conservation. Returns the number of
/// completed flights.
fn check_trace_conservation<N: Network>(
    mut net: N,
    seed: u64,
    pattern: TrafficPattern,
    load: f64,
) -> Result<usize, String> {
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    let n = net.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inj = BernoulliInjector::new(load, 512, 256, pattern);
    for _ in 0..200u64 {
        let now = net.cycle();
        for p in inj.generate(n, now, &mut rng) {
            net.inject(p);
        }
        net.step();
    }
    drain(&mut net, 500_000);
    if net.pending() != 0 {
        return Err("network failed to drain".into());
    }
    if rec.dropped() != 0 {
        return Err(format!("recorder dropped {} events", rec.dropped()));
    }
    invariants::packet_conservation(&rec.events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ring_trace_conserves_flits(seed in any::<u32>(), pi in 0usize..4, load in 0.05f64..0.5) {
        let pattern = TrafficPattern::all()[pi % TrafficPattern::all().len()];
        let flights = check_trace_conservation(
            RoutedNetwork::new(RoutedTopology::Ring { nodes: 16 }, RoutedConfig::default()).unwrap(),
            seed as u64, pattern, load,
        ).unwrap();
        prop_assert!(flights > 0 || load < 0.1, "no traffic recorded at load {load}");
    }

    #[test]
    fn mesh_trace_conserves_flits(seed in any::<u32>(), pi in 0usize..4, load in 0.05f64..0.5) {
        let pattern = TrafficPattern::all()[pi % TrafficPattern::all().len()];
        check_trace_conservation(
            RoutedNetwork::new(
                RoutedTopology::Mesh { width: 4, height: 4 },
                RoutedConfig::default(),
            ).unwrap(),
            seed as u64, pattern, load,
        ).unwrap();
    }

    #[test]
    fn optbus_trace_conserves_flits(seed in any::<u32>(), pi in 0usize..4, load in 0.05f64..0.4) {
        let pattern = TrafficPattern::all()[pi % TrafficPattern::all().len()];
        check_trace_conservation(
            OpticalBus::new(16, BusConfig::default()).unwrap(),
            seed as u64, pattern, load,
        ).unwrap();
    }

    #[test]
    fn crossbar_trace_conserves_flits(seed in any::<u32>(), pi in 0usize..4, load in 0.05f64..0.5) {
        let pattern = TrafficPattern::all()[pi % TrafficPattern::all().len()];
        check_trace_conservation(
            MzimCrossbar::new(16, CrossbarConfig::default()).unwrap(),
            seed as u64, pattern, load,
        ).unwrap();
    }

    /// Photonic multicast: one begin with ndest = K, K ends.
    #[test]
    fn crossbar_multicast_trace_conserves(mask in 1u16..0xFFFF) {
        let mut net = MzimCrossbar::new(16, CrossbarConfig::default()).unwrap();
        let rec = RecordingTracer::new();
        net.set_tracer(rec.handle());
        let dests: Vec<usize> = (1..16).filter(|i| mask >> i & 1 == 1).collect();
        prop_assume!(!dests.is_empty());
        net.inject(Packet::multicast(1, 0, &dests, 512, 0));
        drain(&mut net, 10_000);
        let flights = invariants::packet_conservation(&rec.events()).unwrap();
        prop_assert_eq!(flights, 1);
        let ends = rec.events().iter()
            .filter(|e| e.kind == EventKind::AsyncEnd)
            .count();
        prop_assert_eq!(ends, dests.len());
    }
}

/// The checker fails loudly when a delivery goes missing: removing one
/// ejection from a healthy stream must flag the packet as in flight.
#[test]
fn checker_flags_lost_packet() {
    let mut net =
        RoutedNetwork::new(RoutedTopology::Ring { nodes: 16 }, RoutedConfig::default()).unwrap();
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    for i in 0..8u64 {
        net.inject(Packet::new(
            i,
            i as usize % 16,
            (i as usize + 5) % 16,
            512,
            0,
        ));
    }
    drain(&mut net, 10_000);
    let mut evs = rec.events();
    assert_eq!(invariants::packet_conservation(&evs), Ok(8));
    let at = evs
        .iter()
        .rposition(|e| e.kind == EventKind::AsyncEnd)
        .unwrap();
    evs.remove(at);
    let err = invariants::packet_conservation(&evs).unwrap_err();
    assert!(err.contains("in flight"), "unexpected error: {err}");
}

/// And when a delivery is duplicated: replaying an ejection must be
/// reported as a multiple-eject.
#[test]
fn checker_flags_duplicated_delivery() {
    let mut net = MzimCrossbar::new(16, CrossbarConfig::default()).unwrap();
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    net.inject(Packet::new(1, 0, 9, 512, 0));
    drain(&mut net, 10_000);
    let mut evs = rec.events();
    let end = evs
        .iter()
        .find(|e| e.kind == EventKind::AsyncEnd)
        .unwrap()
        .clone();
    evs.push(end);
    let err = invariants::packet_conservation(&evs).unwrap_err();
    assert!(err.contains("ejected 2 times"), "unexpected error: {err}");
}
