//! Property tests: the trace stream proves flit conservation, and every
//! fabric — hand-wired or composed from combinators — stays live.
//!
//! One topology-parameterized harness replaces the per-fabric copies that
//! used to live here: every fabric emits an AsyncBegin `pkt` event on
//! injection and an AsyncEnd per destination delivery, so for any
//! topology, traffic pattern and load,
//! [`flumen_trace::invariants::packet_conservation`] must accept the
//! recorded stream — every injected packet ejects exactly once per
//! destination, nothing duplicated, nothing lost. The same harness also
//! proves handshake liveness: flood, stop injecting, and the network must
//! drain to empty (bubble flow control / credit reservation rule out
//! deadlock).

use flumen_noc::fabric::torus_4x4;
use flumen_noc::harness::drain;
use flumen_noc::traffic::{BernoulliInjector, TrafficPattern};
use flumen_noc::{
    torus, CrossbarConfig, MzimCrossbar, Network, OpticalBus, Packet, RoutedConfig, RoutedNetwork,
    RoutedTopology,
};
use flumen_trace::{invariants, EventKind, RecordingTracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named topology constructor for the generic harness.
type NamedTopology = (&'static str, fn() -> Box<dyn Network>);

/// Every topology under test, by constructor. Composed fabrics (torus)
/// ride the same harness as the hand-wired ones — the generic tests are
/// what a new topology gets for free.
fn topologies() -> Vec<NamedTopology> {
    vec![
        ("ring16", || Box::new(RoutedNetwork::ring_16())),
        ("mesh4x4", || Box::new(RoutedNetwork::mesh_4x4())),
        ("optbus16", || Box::new(OpticalBus::optbus_16())),
        ("flumen16", || Box::new(MzimCrossbar::flumen_16())),
        ("torus4x4", || Box::new(torus_4x4())),
        ("torus4x2", || {
            // flumen-check: allow(no-panic-hot-path) — fixed shape, valid by construction
            Box::new(torus(4, 2, &RoutedConfig::default()).expect("4x2 torus is valid"))
        }),
    ]
}

/// Drives `net` under Bernoulli traffic for 200 cycles, drains it, and
/// checks the recorded trace for conservation. Returns completed flights.
fn check_trace_conservation(
    net: &mut dyn Network,
    seed: u64,
    pattern: TrafficPattern,
    load: f64,
) -> Result<usize, String> {
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    let n = net.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inj = BernoulliInjector::new(load, 512, 256, pattern);
    for _ in 0..200u64 {
        let now = net.cycle();
        for p in inj.generate(n, now, &mut rng) {
            net.inject(p);
        }
        net.step();
    }
    drain(net, 500_000);
    if net.pending() != 0 {
        return Err("network failed to drain".into());
    }
    if rec.dropped() != 0 {
        return Err(format!("recorder dropped {} events", rec.dropped()));
    }
    invariants::packet_conservation(&rec.events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation, over every topology × pattern × load.
    #[test]
    fn any_topology_trace_conserves_flits(
        ti in 0usize..6,
        seed in any::<u32>(),
        pi in 0usize..4,
        load in 0.05f64..0.4,
    ) {
        let topos = topologies();
        let (name, make) = &topos[ti % topos.len()];
        let pattern = TrafficPattern::all()[pi % TrafficPattern::all().len()];
        let mut net = make();
        let flights = check_trace_conservation(net.as_mut(), seed as u64, pattern, load)
            .map_err(|e| TestCaseError(format!("{name}: {e}")))?;
        prop_assert!(flights > 0 || load < 0.1, "{name}: no traffic recorded at load {load}");
    }

    /// Handshake liveness: flood far past saturation, stop injecting, and
    /// every topology must still drain to empty — no credit or bubble
    /// deadlock anywhere in the composition.
    #[test]
    fn any_topology_drains_after_flood(ti in 0usize..6, seed in any::<u32>()) {
        let topos = topologies();
        let (name, make) = &topos[ti % topos.len()];
        let mut net = make();
        let n = net.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let mut inj = BernoulliInjector::new(0.9, 512, 256, TrafficPattern::UniformRandom);
        for _ in 0..150u64 {
            let now = net.cycle();
            for p in inj.generate(n, now, &mut rng) {
                net.inject(p);
            }
            net.step();
        }
        let injected = net.stats().injected;
        drain(net.as_mut(), 1_000_000);
        prop_assert_eq!(net.pending(), 0, "{} failed to drain", name);
        prop_assert_eq!(net.stats().delivered, injected, "{} lost flits", name);
    }

    /// Photonic multicast: one begin with ndest = K, K ends.
    #[test]
    fn crossbar_multicast_trace_conserves(mask in 1u16..0xFFFF) {
        let mut net = MzimCrossbar::new(16, CrossbarConfig::default()).unwrap();
        let rec = RecordingTracer::new();
        net.set_tracer(rec.handle());
        let dests: Vec<usize> = (1..16).filter(|i| mask >> i & 1 == 1).collect();
        prop_assume!(!dests.is_empty());
        net.inject(Packet::multicast(1, 0, &dests, 512, 0));
        drain(&mut net, 10_000);
        let flights = invariants::packet_conservation(&rec.events()).unwrap();
        prop_assert_eq!(flights, 1);
        let ends = rec.events().iter()
            .filter(|e| e.kind == EventKind::AsyncEnd)
            .count();
        prop_assert_eq!(ends, dests.len());
    }
}

/// The checker fails loudly when a delivery goes missing: removing one
/// ejection from a healthy stream must flag the packet as in flight.
#[test]
fn checker_flags_lost_packet() {
    let mut net =
        RoutedNetwork::new(RoutedTopology::Ring { nodes: 16 }, RoutedConfig::default()).unwrap();
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    for i in 0..8u64 {
        net.inject(Packet::new(
            i,
            i as usize % 16,
            (i as usize + 5) % 16,
            512,
            0,
        ));
    }
    drain(&mut net, 10_000);
    let mut evs = rec.events();
    assert_eq!(invariants::packet_conservation(&evs), Ok(8));
    let at = evs
        .iter()
        .rposition(|e| e.kind == EventKind::AsyncEnd)
        .unwrap();
    evs.remove(at);
    let err = invariants::packet_conservation(&evs).unwrap_err();
    assert!(err.contains("in flight"), "unexpected error: {err}");
}

/// And when a delivery is duplicated: replaying an ejection must be
/// reported as a multiple-eject.
#[test]
fn checker_flags_duplicated_delivery() {
    let mut net = MzimCrossbar::new(16, CrossbarConfig::default()).unwrap();
    let rec = RecordingTracer::new();
    net.set_tracer(rec.handle());
    net.inject(Packet::new(1, 0, 9, 512, 0));
    drain(&mut net, 10_000);
    let mut evs = rec.events();
    let end = evs
        .iter()
        .find(|e| e.kind == EventKind::AsyncEnd)
        .unwrap()
        .clone();
    evs.push(end);
    let err = invariants::packet_conservation(&evs).unwrap_err();
    assert!(err.contains("ejected 2 times"), "unexpected error: {err}");
}
