//! Snapshot/resume equivalence for every network model: a mid-run
//! checkpoint restored onto a freshly constructed network must continue
//! bit-identically to the uninterrupted original — same deliveries, same
//! stats (f64 fields compared by bit pattern), same final backlog.

use flumen_noc::fabric::torus_4x4;
use flumen_noc::{
    BusConfig, CrossbarConfig, MzimCrossbar, Network, OpticalBus, Packet, RoutedConfig,
    RoutedNetwork, RoutedTopology,
};
use flumen_sim::{SimRng, Snapshotable};
use proptest::prelude::*;
use rand::Rng;

/// Drives `net` for `cycles` steps under deterministic random load,
/// returning a digest of every delivery observed.
fn drive<N: Network>(net: &mut N, rng: &mut SimRng, cycles: u64) -> Vec<(u64, u64, usize)> {
    let n = net.num_nodes();
    let mut digest = Vec::new();
    for c in 0..cycles {
        let now = net.cycle();
        // A couple of injections per cycle from random sources.
        for _ in 0..2 {
            if rng.gen_range(0..10) < 7 {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                if dst == src {
                    dst = (dst + 1) % n;
                }
                net.inject(Packet::new(c * 16 + src as u64, src, dst, 512, now));
            }
        }
        for d in net.step() {
            digest.push((d.at, d.packet.id, d.packet.dst));
        }
    }
    digest
}

fn check_network<N: Network + Snapshotable>(original: N, fresh: N, seed: u64) {
    check_network_at(original, fresh, seed, 200);
}

/// Like [`check_network`] but checkpoints after `warm` cycles — callers
/// pick arbitrary mid-phase cycles to prove there is no "safe" snapshot
/// point the fabric secretly depends on.
fn check_network_at<N: Network + Snapshotable>(
    mut original: N,
    mut fresh: N,
    seed: u64,
    warm: u64,
) {
    let mut rng = SimRng::seed_from_u64(seed);
    // Warm the network into a state with queued + in-flight packets.
    drive(&mut original, &mut rng, warm);
    let snap = original.snapshot();
    let rng_snap = flumen_sim::ToJson::to_json(&rng);

    // Continue the original.
    let tail_a = drive(&mut original, &mut rng, 300);

    // Restore onto the fresh instance and continue identically.
    fresh.restore(&snap).expect("restore");
    let mut rng_b: SimRng = flumen_sim::FromJson::from_json(&rng_snap).expect("rng restore");
    let tail_b = drive(&mut fresh, &mut rng_b, 300);

    assert_eq!(tail_a, tail_b, "post-restore deliveries diverged");
    assert_eq!(original.pending(), fresh.pending());
    let (sa, sb) = (original.stats(), fresh.stats());
    assert_eq!(sa.injected, sb.injected);
    assert_eq!(sa.delivered, sb.delivered);
    assert_eq!(sa.latency_sum, sb.latency_sum);
    assert_eq!(sa.latency_hist, sb.latency_hist);
    assert_eq!(sa.link_busy, sb.link_busy);
    assert_eq!(sa.cycles, sb.cycles);
}

#[test]
fn crossbar_resumes_bit_identically() {
    check_network(
        MzimCrossbar::flumen_16(),
        MzimCrossbar::flumen_16(),
        0xC0FFEE,
    );
}

#[test]
fn optical_bus_resumes_bit_identically() {
    check_network(OpticalBus::optbus_16(), OpticalBus::optbus_16(), 0xB05);
}

#[test]
fn ring_resumes_bit_identically() {
    check_network(RoutedNetwork::ring_16(), RoutedNetwork::ring_16(), 0x4177);
}

#[test]
fn mesh_resumes_bit_identically() {
    check_network(RoutedNetwork::mesh_4x4(), RoutedNetwork::mesh_4x4(), 0x3E5A);
}

#[test]
fn composed_torus_resumes_bit_identically() {
    check_network(torus_4x4(), torus_4x4(), 0x7025);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A composed fabric checkpointed at a *random* cycle mid-phase — with
    /// flits queued in router Fifos, sitting on channel wires, and credits
    /// about to be republished — must resume to the same delivery stream
    /// and stats as the uninterrupted run.
    #[test]
    fn composed_torus_resumes_from_any_cycle(seed in any::<u32>(), warm in 50u64..400) {
        check_network_at(torus_4x4(), torus_4x4(), seed as u64, warm);
    }
}

#[test]
fn snapshot_is_canonical_fixed_point() {
    // write(parse(write(snapshot))) == write(snapshot): the serialized form
    // is already canonical, so content hashes of checkpoints are stable.
    let mut net = MzimCrossbar::new(8, CrossbarConfig::default()).unwrap();
    let mut rng = SimRng::seed_from_u64(9);
    drive(&mut net, &mut rng, 64);
    let snap = net.snapshot();
    let text = snap.to_canonical();
    let reparsed = flumen_sim::Json::parse(&text).expect("parse back");
    assert_eq!(reparsed.to_canonical(), text);
}

#[test]
fn restore_rejects_malformed_state() {
    let mut net = OpticalBus::new(4, BusConfig::default()).unwrap();
    assert!(net.restore(&flumen_sim::Json::Null).is_err());
    let mut ring =
        RoutedNetwork::new(RoutedTopology::Ring { nodes: 4 }, RoutedConfig::default()).unwrap();
    assert!(ring
        .restore(&flumen_sim::Json::obj([(
            "cycle",
            flumen_sim::Json::Num(1.0)
        )]))
        .is_err());
}
