//! Integration: the full runtime — benchmarks × topologies through the
//! coupled multicore + NoP + control-unit simulation.

use flumen::{run_benchmark, ControlUnitParams, RuntimeConfig, SystemTopology};
use flumen_workloads::{small_benchmarks, Rotation3d};

fn quick_cfg() -> RuntimeConfig {
    RuntimeConfig {
        max_cycles: 20_000_000,
        ..RuntimeConfig::paper()
    }
}

#[test]
fn every_small_benchmark_finishes_on_every_topology() {
    let cfg = quick_cfg();
    for bench in small_benchmarks() {
        for topo in SystemTopology::all() {
            let r = run_benchmark(bench.as_ref(), topo, &cfg);
            assert!(r.cycles > 0, "{} on {}", bench.name(), topo.name());
            assert!(r.total_energy_j() > 0.0);
            assert!(r.energy.core_j > 0.0);
            // Work conservation: MACs ended up somewhere.
            let did_work = r.counts.core_ops > 0 || r.counts.mzim_mvms > 0;
            assert!(did_work, "{} on {}", bench.name(), topo.name());
        }
    }
}

#[test]
fn flumen_a_offloads_and_wins_on_rotation() {
    let cfg = quick_cfg();
    let bench = Rotation3d::paper();
    let mesh = run_benchmark(&bench, SystemTopology::Mesh, &cfg);
    let fa = run_benchmark(&bench, SystemTopology::FlumenA, &cfg);
    assert!(fa.counts.offload_requests > 0);
    assert!(fa.counts.mzim_mvms > 0);
    assert!(
        fa.cycles * 2 < mesh.cycles,
        "rotation should speed up ≥2x: mesh {} vs fa {}",
        mesh.cycles,
        fa.cycles
    );
    assert!(fa.total_energy_j() < mesh.total_energy_j());
    assert!(fa.edp() < mesh.edp());
}

#[test]
fn flumen_a_does_less_core_work_than_local_modes() {
    let cfg = quick_cfg();
    let bench = Rotation3d::paper();
    let local = run_benchmark(&bench, SystemTopology::FlumenI, &cfg);
    let fa = run_benchmark(&bench, SystemTopology::FlumenA, &cfg);
    assert!(
        fa.counts.core_ops < local.counts.core_ops / 2,
        "offload must remove the MAC work from the cores: {} vs {}",
        fa.counts.core_ops,
        local.counts.core_ops
    );
}

#[test]
fn electrical_and_photonic_runs_move_the_same_data() {
    // DRAM traffic is a property of the working set, not the topology.
    let cfg = quick_cfg();
    let bench = Rotation3d::paper();
    let mesh = run_benchmark(&bench, SystemTopology::Mesh, &cfg);
    let optbus = run_benchmark(&bench, SystemTopology::OptBus, &cfg);
    let ratio = mesh.counts.dram_accesses as f64 / optbus.counts.dram_accesses.max(1) as f64;
    assert!((0.8..1.25).contains(&ratio), "dram ratio {ratio}");
}

#[test]
fn disabling_pipelining_slows_block_heavy_offload() {
    // E14: with no phase-DAC double buffering, per-block switching
    // dominates and Flumen-A loses its advantage on multi-block kernels.
    let bench = flumen_workloads::ImageBlur::small();
    let fast_cfg = quick_cfg();
    let slow_cfg = RuntimeConfig {
        control: ControlUnitParams {
            config_pipeline: 0.0,
            ..ControlUnitParams::paper()
        },
        ..quick_cfg()
    };
    let fast = run_benchmark(&bench, SystemTopology::FlumenA, &fast_cfg);
    let slow = run_benchmark(&bench, SystemTopology::FlumenA, &slow_cfg);
    assert!(
        slow.cycles > fast.cycles,
        "unpipelined switching must cost cycles: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn utilization_trace_reports_low_link_usage() {
    // Fig. 1's premise: linear-algebra codes leave photonic links mostly
    // idle.
    let cfg = quick_cfg();
    let bench = flumen_workloads::ImageBlur::small();
    let r = flumen::run_utilization_trace(&bench, 64, 200, &cfg);
    assert!(!r.utilization_trace.is_empty());
    let avg: f64 = r.utilization_trace.iter().sum::<f64>() / r.utilization_trace.len() as f64;
    assert!(avg < 0.5, "linear algebra should not saturate links: {avg}");
}
