//! Integration: Algorithm 1 scheduling ↔ the crossbar network ↔ the
//! system engine.

use flumen::scheduler::SchedulerParams;
use flumen::{ControlUnitParams, MzimControlUnit};
use flumen_noc::{CrossbarConfig, MzimCrossbar, Network, Packet};
use flumen_system::{ActivityCounts, CoreTask, ExternalServer, SystemConfig, SystemSim};

fn sys16() -> SystemConfig {
    SystemConfig::paper()
}

fn crossbar() -> MzimCrossbar {
    MzimCrossbar::new(16, CrossbarConfig::default()).unwrap()
}

#[test]
fn offload_through_engine_completes_and_counts() {
    let mut tasks: Vec<Vec<CoreTask>> = vec![Vec::new(); 64];
    // Four cores offload small kernels.
    for c in [0usize, 17, 35, 60] {
        tasks[c].push(CoreTask::External {
            payload: [8, 64, 4, 2048, 0],
            fallback: vec![CoreTask::Compute { ops: 12_288 }],
        });
    }
    let sim = SystemSim::new(
        sys16(),
        crossbar(),
        MzimControlUnit::new(ControlUnitParams::paper()),
        tasks,
    );
    let r = sim.run(1_000_000);
    assert_eq!(r.counts.offload_requests, 4);
    // All admitted (idle network): reconfigs = 4 requests × 8 configs.
    assert_eq!(r.counts.mzim_reconfigs, 32);
    assert_eq!(r.counts.mzim_mvms, 4 * 8 * 64);
    assert_eq!(r.counts.core_ops, 0, "no fallback should have run");
    assert!(r.counts.mzim_active_cycles > 0);
}

#[test]
fn rejected_offloads_run_their_fallback() {
    // η = -1: the scheduler can never admit; max_wait forces rejection.
    let control = ControlUnitParams {
        scheduler: SchedulerParams {
            eta: -1.0,
            max_wait: 200,
            ..SchedulerParams::paper()
        },
        ..ControlUnitParams::paper()
    };
    let mut tasks: Vec<Vec<CoreTask>> = vec![Vec::new(); 64];
    tasks[3].push(CoreTask::External {
        payload: [4, 16, 4, 256, 0],
        fallback: vec![CoreTask::Compute { ops: 1_536 }],
    });
    let sim = SystemSim::new(sys16(), crossbar(), MzimControlUnit::new(control), tasks);
    let r = sim.run(1_000_000);
    assert_eq!(r.counts.core_ops, 1_536, "fallback must execute locally");
    assert_eq!(r.counts.mzim_mvms, 0);
}

#[test]
fn compute_partition_blocks_and_releases_traffic() {
    // One long-running offload; packets between reserved endpoints must be
    // delayed until the partition tears down, then flow.
    let control = ControlUnitParams::paper();
    let mut cu = MzimControlUnit::new(control);
    let mut net = crossbar();
    // Requester on chiplet 15 → bottom half (ports 8..16) reserved.
    cu.on_request(0, 60, 15, 1, [2000, 8, 4, 0, 0]);
    let _ = cu.step(0, &mut net);
    assert_eq!(net.reserved_wires().len(), 8);

    net.inject(Packet::new(900, 9, 10, 512, 0)); // both reserved
    net.inject(Packet::new(901, 0, 1, 512, 0)); // both free
    let mut free_done = None;
    let mut blocked_done = None;
    for _ in 0..20_000u64 {
        let now = net.cycle();
        let _ = cu.step(now, &mut net);
        for d in net.step() {
            match d.packet.id {
                900 => blocked_done = Some(d.at),
                901 => free_done = Some(d.at),
                _ => {}
            }
        }
        if free_done.is_some() && blocked_done.is_some() {
            break;
        }
    }
    let (free, blocked) = (free_done.unwrap(), blocked_done.unwrap());
    assert!(free < 30, "unreserved traffic flows immediately: {free}");
    assert!(
        blocked > 500,
        "reserved traffic waits for teardown: {blocked}"
    );
    assert!(net.reserved_wires().is_empty(), "partition released");
}

#[test]
fn beta_gating_matches_scan_depth_semantics() {
    use flumen::scheduler::buffer_utilization;
    // One hot endpoint in sixteen.
    let mut depths = vec![0usize; 16];
    depths[7] = 14;
    let beta_global = buffer_utilization(&depths, 1.0, 16);
    let beta_scan = buffer_utilization(&depths, 0.5, 16);
    let beta_hot = buffer_utilization(&depths, 1.0 / 16.0, 16);
    assert!(beta_global < beta_scan && beta_scan < beta_hot);
}

#[test]
fn control_unit_drains_counts_once() {
    let mut cu = MzimControlUnit::new(ControlUnitParams::paper());
    let mut net = crossbar();
    cu.on_request(0, 0, 0, 1, [2, 8, 4, 0, 0]);
    for _ in 0..200u64 {
        let now = net.cycle();
        let _ = cu.step(now, &mut net);
        net.step();
    }
    let mut counts = ActivityCounts::default();
    cu.drain_counts(&mut counts);
    assert_eq!(counts.mzim_reconfigs, 2);
    let mut again = ActivityCounts::default();
    cu.drain_counts(&mut again);
    assert_eq!(again.mzim_reconfigs, 0, "drain must reset");
}
