//! Property test: the scheduler's partition trace obeys the grant/release
//! protocol for any request stream.
//!
//! Every wire of the MZIM crossbar must alternate strictly between
//! `partition` AsyncBegin (grant) and AsyncEnd (release) events — a
//! double-grant or a release of an unheld wire is a scheduler bug. The
//! invariant is checked over the recorded trace stream, so the test also
//! exercises the tracing plumbing end to end.

use flumen::scheduler::SchedulerParams;
use flumen::{ControlUnitParams, MzimControlUnit};
use flumen_noc::{CrossbarConfig, MzimCrossbar, Network};
use flumen_system::ExternalServer;
use flumen_trace::{invariants, EventKind, RecordingTracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Feeds `nreq` randomized offload requests into a control unit attached
/// to a 16-port crossbar and drives the pair until every request has
/// resolved (or the cycle budget runs out, which the caller treats as
/// acceptable: held-at-end partitions are legal).
fn run_random_requests(seed: u64, nreq: usize, params: ControlUnitParams) -> Arc<RecordingTracer> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rec = RecordingTracer::new();
    let mut cu = MzimControlUnit::new(params);
    cu.set_tracer(rec.handle());
    let mut net = MzimCrossbar::new(16, CrossbarConfig::default()).unwrap();

    let mut pending: Vec<(u64, usize, u64, [u64; 5])> = (0..nreq)
        .map(|i| {
            let arrival = rng.gen_range(0..400u64);
            let chiplet = rng.gen_range(0..16usize);
            let configs = rng.gen_range(1..12u64);
            let vectors = rng.gen_range(1..64u64);
            let n = [2u64, 4, 8][rng.gen_range(0..3usize)];
            (arrival, chiplet, i as u64 + 1, [configs, vectors, n, 0, 0])
        })
        .collect();
    pending.sort_by_key(|r| r.0);

    let mut resolved = 0usize;
    for _ in 0..60_000u64 {
        let now = net.cycle();
        while let Some(&(arrival, chiplet, tag, payload)) = pending.first() {
            if arrival > now {
                break;
            }
            cu.on_request(now, chiplet * 4, chiplet, tag, payload);
            pending.remove(0);
        }
        resolved += cu.step(now, &mut net).len();
        net.step();
        if resolved == nreq && pending.is_empty() {
            break;
        }
    }
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Default (paper) parameters: every grant/release alternates per
    /// wire, and with an idle network every span eventually closes.
    #[test]
    fn partition_grants_alternate_per_wire(seed in any::<u32>(), nreq in 1usize..8) {
        let rec = run_random_requests(seed as u64, nreq, ControlUnitParams::paper());
        prop_assert_eq!(rec.dropped(), 0);
        let evs = rec.events();
        let grants = invariants::partition_alternation(&evs);
        prop_assert!(grants.is_ok(), "alternation violated: {:?}", grants);
        let begins = evs.iter().filter(|e| e.kind == EventKind::AsyncBegin).count();
        let ends = evs.iter().filter(|e| e.kind == EventKind::AsyncEnd).count();
        prop_assert_eq!(begins, ends, "a partition was never torn down");
        // Every request left a decision in the trace.
        let requests = evs.iter().filter(|e| e.name == "request").count();
        prop_assert_eq!(requests, nreq);
    }

    /// Hostile parameters (η = -1 forces timeouts): requests that bounce
    /// to local compute must not leak half-open partition spans.
    #[test]
    fn timeouts_never_leak_partitions(seed in any::<u32>(), nreq in 1usize..6) {
        let params = ControlUnitParams {
            scheduler: SchedulerParams {
                eta: -1.0,
                max_wait: 300,
                ..SchedulerParams::paper()
            },
            ..ControlUnitParams::paper()
        };
        let rec = run_random_requests(seed as u64, nreq, params);
        let evs = rec.events();
        prop_assert!(invariants::partition_alternation(&evs).is_ok());
        // Nothing was ever admitted, so no partition events at all.
        prop_assert!(!evs.iter().any(|e| e.name == "partition"));
        prop_assert!(evs.iter().any(|e| e.name == "timeout"));
    }
}

/// The invariant checker itself must fail loudly when the protocol is
/// broken: replaying a recorded grant twice is flagged as a double-grant.
#[test]
fn checker_rejects_replayed_grant() {
    let rec = run_random_requests(7, 2, ControlUnitParams::paper());
    let mut evs = rec.events();
    let at = evs
        .iter()
        .position(|e| e.name == "partition" && e.kind == EventKind::AsyncBegin)
        .expect("at least one grant on an idle network");
    // Replay the grant while the wire is still held.
    let grant = evs[at].clone();
    evs.insert(at + 1, grant);
    let err = invariants::partition_alternation(&evs).unwrap_err();
    assert!(err.contains("double-granted"), "unexpected error: {err}");
}
