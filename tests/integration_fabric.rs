//! Integration: photonic fabric ↔ linear algebra ↔ workloads.
//!
//! Exercises the full physical path — Clements programming, partition
//! barriers, SVD circuits, analog precision — against the benchmarks'
//! golden math.

use flumen::{AnalogModel, FlumenFabric, PartitionConfig, PhotonicExecutor};
use flumen_linalg::{random_unitary, spectral_norm, RMat, C64};
use flumen_workloads::{dct8_matrix, small_benchmarks, Benchmark, ImageBlur, Jpeg, Rotation3d};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn fabric_routes_and_computes_simultaneously_with_benchmark_weights() {
    // Use the actual 3D-rotation matrix as the compute payload while the
    // other half routes a permutation.
    let rot = Rotation3d::small();
    let job = &rot.jobs()[0];
    let mut fabric = FlumenFabric::new(8).unwrap();
    fabric
        .set_partitions(&[
            (4, PartitionConfig::Comm),
            (4, PartitionConfig::Compute(&job.matrix)),
        ])
        .unwrap();
    fabric.route_permutation_in(0, &[3, 0, 1, 2]).unwrap();

    // Every vertex transforms correctly through the bottom partition.
    for (v, gold) in job.vectors.iter().zip(rot.golden_vertices()).take(8) {
        let y = fabric.compute_in(1, v).unwrap();
        for (a, b) in y.iter().zip(gold.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }
    // And the comm partition still routes with unit power.
    let mut fields = vec![C64::ZERO; 8];
    fields[1] = C64::ONE;
    let out = fabric.propagate(&fields);
    assert!((out[0].norm_sqr() - 1.0).abs() < 1e-9);
}

#[test]
fn dct_matrix_runs_on_full_fabric_as_unitary() {
    let d = dct8_matrix();
    // The DCT is orthogonal: program it directly as the fabric's unitary.
    assert!((spectral_norm(&d).unwrap() - 1.0).abs() < 1e-9);
    let mut fabric = FlumenFabric::new(8).unwrap();
    fabric.configure_unitary(&d.to_cmat()).unwrap();
    let block_col: Vec<C64> = (0..8)
        .map(|i| C64::from_re(((i as f64) * 0.3).sin()))
        .collect();
    let out = fabric.propagate(&block_col);
    let exact = d.mul_vec(&block_col.iter().map(|z| z.re).collect::<Vec<_>>());
    for (o, e) in out.iter().zip(exact.iter()) {
        assert!((o.re - e).abs() < 1e-8);
        assert!(o.im.abs() < 1e-8);
    }
}

#[test]
fn every_small_benchmark_verifies_through_the_photonic_model() {
    for bench in small_benchmarks() {
        let n = if bench.name() == "jpeg" { 8 } else { 4 };
        let results = PhotonicExecutor::ideal(n)
            .run_benchmark(bench.as_ref(), None)
            .unwrap();
        assert!(bench.verify(&results, 1e-7), "{}", bench.name());
    }
}

#[test]
fn eight_bit_jpeg_dct_stays_within_analog_tolerance() {
    let bench = Jpeg::small();
    let exec = PhotonicExecutor {
        n: 8,
        model: AnalogModel::eight_bit(),
        store: None,
    };
    let results = exec.run_benchmark(&bench, None).unwrap();
    // Coefficients span roughly ±4 after the level shift; a few LSBs of an
    // 8-bit pipeline is ~0.1.
    assert!(bench.verify(&results, 0.25), "8-bit DCT error too large");
}

#[test]
fn blur_kernel_with_loss_equalization_still_blurs() {
    // Route a permutation, equalize losses, and confirm all receivers see
    // identical power — the §3.1.2 claim — using the blur benchmark's
    // image data as modulation amplitudes.
    let blur = ImageBlur::small();
    let img = blur.image();
    let dev = flumen::DeviceParams::paper();
    let mut fabric = FlumenFabric::new(8).unwrap();
    fabric
        .configure_permutation(&[6, 4, 2, 0, 7, 5, 3, 1])
        .unwrap();
    let worst_db = fabric.equalize_losses(&dev).unwrap();
    assert!(worst_db.value() > 0.0);
    let attens = fabric.attenuations();
    assert!(
        attens.iter().any(|&a| a < 1.0),
        "some path must be attenuated"
    );
    // Modulate with pixel values; the routed outputs carry them exactly
    // (the model keeps loss accounting separate from field propagation).
    let fields: Vec<C64> = (0..8).map(|i| C64::from_re(img.get(0, i, 0))).collect();
    let out = fabric.propagate(&fields);
    let perm = [6usize, 4, 2, 0, 7, 5, 3, 1];
    for (i, &p) in perm.iter().enumerate() {
        let sent = fields[i].norm_sqr();
        let atten = {
            let t = fabric.trace_route(i).unwrap();
            fabric.attenuations()[t.mid_wire]
        };
        let got = out[p].norm_sqr();
        assert!((got - sent * atten * atten).abs() < 1e-9);
    }
}

#[test]
fn random_unitaries_survive_fabric_round_trip() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let u = random_unitary(8, &mut rng);
        let mut fabric = FlumenFabric::new(8).unwrap();
        fabric.configure_unitary(&u).unwrap();
        assert!(fabric.transfer_matrix().approx_eq(&u, 1e-8));
    }
}

#[test]
fn spectral_scaling_recovers_large_weights() {
    // Weights far outside the passive range still compute correctly
    // thanks to the §3.3.1 pre-scaling.
    let mut rng = StdRng::seed_from_u64(5);
    let big = RMat::from_fn(4, 4, |_, _| rng.gen_range(-10.0..10.0));
    let mut fabric = FlumenFabric::new(8).unwrap();
    fabric
        .set_partitions(&[
            (4, PartitionConfig::Compute(&big)),
            (4, PartitionConfig::Idle),
        ])
        .unwrap();
    let x = [0.3, -0.7, 0.2, 0.9];
    let y = fabric.compute_in(0, &x).unwrap();
    let exact = big.mul_vec(&x);
    for (a, b) in y.iter().zip(exact.iter()) {
        assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()));
    }
}
