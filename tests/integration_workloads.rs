//! Integration: benchmark task graphs ↔ the system engine (local mode),
//! checking work accounting end to end.

use flumen_noc::MzimCrossbar;
use flumen_system::{NullServer, SystemConfig, SystemSim};
use flumen_workloads::taskgen::{generate, ExecMode, TaskGenConfig};
use flumen_workloads::{small_benchmarks, Benchmark, ImageBlur, Jpeg};

fn run_local(bench: &dyn Benchmark) -> flumen_system::RunResult {
    let sys = SystemConfig::paper();
    let tasks = generate(bench, &sys, ExecMode::Local, &TaskGenConfig::default());
    let sim = SystemSim::new(sys, MzimCrossbar::flumen_16(), NullServer::default(), tasks);
    let r = sim.run(50_000_000);
    assert!(r.cycles < 50_000_000, "local run must complete");
    r
}

#[test]
fn local_op_counts_track_benchmark_macs() {
    let cfg = TaskGenConfig::default();
    for bench in small_benchmarks() {
        let r = run_local(bench.as_ref());
        let expected = bench.total_macs() as f64 * cfg.ops_per_mac;
        let got = r.counts.core_ops as f64;
        // Epilogue ops and rounding sit on top of the MAC work.
        assert!(
            got >= expected * 0.99,
            "{}: ops {got} < macs·ops_per_mac {expected}",
            bench.name()
        );
        assert!(
            got <= expected * 1.2 + bench.epilogue_ops() as f64 + 64.0 * 64.0,
            "{}: ops {got} way above expectation {expected}",
            bench.name()
        );
    }
}

#[test]
fn local_runs_touch_the_memory_system() {
    let r = run_local(&ImageBlur::small());
    assert!(r.counts.l1d_accesses > 0);
    assert!(r.counts.l2_accesses > 0);
    assert!(
        r.counts.dram_accesses > 0,
        "cold working set must reach DRAM"
    );
    assert!(
        r.counts.nop_packets > 0,
        "distributed L3 must create traffic"
    );
    assert!(r.net_stats.delivered > 0);
}

#[test]
fn two_wave_jpeg_respects_barriers() {
    // The engine must complete wave 0 (and its barrier) before wave 1; the
    // run finishing at all proves the barrier bookkeeping, and the op
    // count proves both waves executed.
    let bench = Jpeg::small();
    let cfg = TaskGenConfig::default();
    let r = run_local(&bench);
    let expected = bench.total_macs() as f64 * cfg.ops_per_mac;
    assert!(r.counts.core_ops as f64 >= expected * 0.99);
}

#[test]
fn offload_taskgen_runs_on_null_server_via_fallbacks() {
    // With a NullServer every offload is rejected; the fallbacks must
    // reproduce the full local op count.
    let bench = ImageBlur::small();
    let sys = SystemConfig::paper();
    let cfg = TaskGenConfig::default();
    let tasks = generate(&bench, &sys, ExecMode::Offload, &cfg);
    let sim = SystemSim::new(sys, MzimCrossbar::flumen_16(), NullServer::default(), tasks);
    let r = sim.run(50_000_000);
    assert!(r.cycles < 50_000_000);
    let mac_ops = bench.total_macs() as f64 * cfg.ops_per_mac;
    assert!(
        r.counts.core_ops as f64 >= mac_ops * 0.99,
        "fallbacks must cover all the work: {} vs {}",
        r.counts.core_ops,
        mac_ops
    );
    assert_eq!(r.counts.mzim_mvms, 0);
}

#[test]
fn larger_benchmarks_take_longer_locally() {
    let small = run_local(&ImageBlur::with_size(8, 8, 1));
    let bigger = run_local(&ImageBlur::with_size(32, 32, 1));
    assert!(bigger.cycles > small.cycles);
    assert!(bigger.counts.core_ops > small.counts.core_ops * 10);
}
