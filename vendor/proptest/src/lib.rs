//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest that its property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range and tuple
//! strategies, [`any`], and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! the case number and the per-test seed, which is deterministic, so a
//! failure reproduces exactly on re-run.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Per-run configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!`; bubbles out of the test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random test inputs.
pub type TestRng = StdRng;

/// The deterministic RNG for one property test, derived from its name.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps cases stable per test and distinct
    // across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The full-domain strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests. Each `pat in strategy` argument is drawn
/// freshly per case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest re-draws; the stand-in counts the case as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through proptest's error path.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through proptest's error path.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -4i32..4) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-4..4).contains(&x));
        }

        #[test]
        fn tuples_destructure((a, b) in (1usize..5, 10u64..20), seed in any::<u32>()) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((10..20).contains(&b));
            let _ = seed; // full domain: nothing to bound
            prop_assert_eq!(a + 1, a + 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_test_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        let strat = 0u64..1_000_000;
        for _ in 0..16 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
