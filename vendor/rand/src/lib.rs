//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of `rand` 0.8's API that it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] helper
//! methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 the real `StdRng` wraps, so streams differ from upstream
//! `rand`, but every consumer in this repo only requires a seedable,
//! deterministic, statistically reasonable source.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic, seedable random number generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
///
/// Implemented blanket-style over [`SampleUniform`] (as in real `rand`)
/// so type inference unifies the range's element type with the result
/// type immediately.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can be drawn from.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Samples a `u64` uniformly below `bound` (> 0) without modulo bias
/// (Lemire's multiply-shift with rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: retry with fresh bits.
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = f64::sample(rng) as $t;
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for snapshot/restore of simulations
        /// that must resume a random stream bit-identically mid-sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot. A
        /// fully-zero state (the xoshiro fixed point) is nudged exactly as
        /// in [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0xDEAD_BEEF, 0xCAFE_F00D, 1, 2],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // A fully zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 1, 2];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, SampleRange};

    /// `shuffle`/`choose` on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }
}
