//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion 0.5's API that its benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros). Each benchmark is timed with
//! `std::time::Instant` over `sample_size` samples and the median
//! per-iteration time is printed — enough to compare hot paths locally,
//! with none of real criterion's statistics or reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// One recorded benchmark measurement (`group/id` label + median time).
///
/// Real criterion persists measurements under `target/criterion/`; the
/// stand-in instead exposes them programmatically so callers (the
/// `bench_perf` trajectory binary) can serialize their own reports.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` label.
    pub name: String,
    /// Median per-iteration wall time.
    pub median: Duration,
    /// Fastest per-iteration wall time — the noise-robust estimator for
    /// "how fast can this code go" that regression gates compare.
    pub min: Duration,
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration wall time of the last `iter` call.
    last_median: Duration,
    /// Fastest per-iteration wall time of the last `iter` call.
    last_min: Duration,
}

impl Bencher {
    /// Times `routine`, once per sample, and records the median and min.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
        self.last_min = times[0];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    min_samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Floor on the sample count that holds even in smoke mode (which
    /// otherwise takes a single sample). Groups whose results feed a
    /// regression gate raise this so one noisy sample cannot flip the
    /// verdict in CI.
    pub fn min_samples(&mut self, n: usize) -> &mut Self {
        self.min_samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            last_median: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{}: median {:?}",
            self.name, id.name, b.last_median
        );
        self.criterion.results.push(BenchResult {
            name: format!("{}/{}", self.name, id.name),
            median: b.last_median,
            min: b.last_min,
        });
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            last_median: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:?}",
            self.name, id.name, b.last_median
        );
        self.criterion.results.push(BenchResult {
            name: format!("{}/{}", self.name, id.name),
            median: b.last_median,
            min: b.last_min,
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        if self.criterion.smoke {
            self.min_samples
        } else {
            self.sample_size.max(self.min_samples)
        }
    }
}

/// Entry point handed to each `criterion_group!` target.
pub struct Criterion {
    /// One sample per benchmark (set when run outside `cargo bench`, e.g.
    /// smoke-testing the bench binaries).
    smoke: bool,
    /// Every measurement taken so far, in run order.
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion parses --bench/--test flags; the stand-in only
        // distinguishes "run fast" smoke mode, requested via --test or env.
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion::with_smoke(smoke)
    }
}

impl Criterion {
    /// Builds an entry point with smoke mode set explicitly (bypassing
    /// the `--test`/`CRITERION_SMOKE` detection of `default`).
    pub fn with_smoke(smoke: bool) -> Self {
        Criterion {
            smoke,
            results: Vec::new(),
        }
    }

    /// Whether benchmarks run one sample each (smoke mode).
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Measurements recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Drains the recorded measurements.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = 20;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            min_samples: 1,
            criterion: self,
        }
    }

    /// Runs one stand-alone (ungrouped) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: if self.smoke { 1 } else { 20 },
            last_median: Duration::ZERO,
            last_min: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name}: median {:?}", b.last_median);
        self.results.push(BenchResult {
            name: name.to_string(),
            median: b.last_median,
            min: b.last_min,
        });
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n * 100).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn groups_run_to_completion() {
        let mut c = Criterion::with_smoke(true);
        sample_bench(&mut c);
        let names: Vec<&str> = c.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["smoke/sum", "smoke/scaled/4"]);
        assert_eq!(c.take_results().len(), 2);
        assert!(c.results().is_empty());
    }
}
